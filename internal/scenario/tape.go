package scenario

import (
	"fmt"
	"math"

	"chiron/internal/faults"
	"chiron/internal/round"
	"chiron/internal/trace"
)

// splitmix64 is the SplitMix64 finalizer, the same cheap well-mixed hash
// the faults samplers use to derive per-cell draws. A private copy: the
// faults one is unexported, and sharing a stream would correlate tape
// extension draws with fault draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// The tape's hash salts: evalSalt decorrelates the per-episode accuracy
// reseed from every per-cell stream; availSalt and jitterSalt give the
// overrun extension independent availability and jitter draws per
// (episode, round, node) cell.
const (
	evalSalt   = 0x6c62272e07bb0142
	availSalt  = 0x9ae16a3b2f90404f
	jitterSalt = 0xc3a5c85c97cb3127
)

// evalSeed derives the accuracy-RNG seed for one evaluation episode.
// Record and Replay both reseed the curve's RNG with it before episode ep,
// so the measurement-noise stream of an episode is a pure function of
// (spec seed, episode) — independent of how many draws training consumed.
func evalSeed(seed int64, ep int) int64 {
	h := splitmix64(uint64(seed) ^ evalSalt)
	h = splitmix64(h ^ uint64(ep)*0x9e3779b97f4a7c15)
	return int64(h & math.MaxInt64)
}

// cellUnit returns a uniform draw in [0,1) for one (episode, round, node)
// cell under a salt — the overrun extension's RNG.
func cellUnit(seed int64, salt uint64, episode, roundIndex, node int) float64 {
	h := splitmix64(uint64(seed) ^ salt)
	h = splitmix64(h ^ uint64(episode)*0xbf58476d1ce4e5b9)
	h = splitmix64(h ^ uint64(roundIndex)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(node)*0x94d049bb133111eb)
	return float64(h>>11) / (1 << 53)
}

// recorder buffers each round's resolved draw columns during a recorded
// evaluation episode. It implements round.DrawRecorder; Record drains the
// buffer into the trace writer after every episode. Training episodes run
// with the recorder attached but disabled — the attachment alone forces
// round.Respond's draw pre-pass, which consumes no RNG and changes no
// results, so the recorded evaluation is bit-identical to an unrecorded
// one.
type recorder struct {
	episode int
	enabled bool
	recs    []trace.DrawsRecord
}

var _ round.DrawRecorder = (*recorder)(nil)

// RecordDraws implements round.DrawRecorder. The pipeline owns and reuses
// the slices, so the record copies them.
func (r *recorder) RecordDraws(roundIndex int, eligible, departing []bool, commTimes []float64) {
	if !r.enabled {
		return
	}
	rec := trace.DrawsRecord{
		Episode:   r.episode,
		Round:     roundIndex,
		Eligible:  append([]bool(nil), eligible...),
		CommTimes: append([]float64(nil), commTimes...),
	}
	for _, d := range departing {
		if d {
			rec.Departing = append([]bool(nil), departing...)
			break
		}
	}
	r.recs = append(r.recs, rec)
}

// begin arms the recorder for one evaluation episode.
func (r *recorder) begin(ep int) {
	r.episode = ep
	r.enabled = true
	r.recs = r.recs[:0]
}

// tapeKey addresses one recorded round.
type tapeKey struct{ episode, round int }

// tape replays a recorded trace's environment draws as a round.DrawSource.
// For rounds the recording covers, the columns are returned verbatim — the
// property that makes same-mechanism replay bit-identical. A counterfactual
// mechanism or budget can outlive the recording (a cheaper policy plays
// more rounds before the budget runs out); those overrun rounds are
// extended deterministically: membership comes from the spec's pure churn
// schedule, and availability and jitter draws are hashed per
// (episode, round, node) cell, so the extension is a pure function of the
// spec — still replayable, never dependent on query order.
type tape struct {
	byKey   map[tapeKey]*trace.DrawsRecord
	episode int
	seed    int64

	// The spec-compiled environment model the overrun extension applies.
	churn        faults.ChurnSchedule
	availability float64
	jitter       float64
	bandwidth    round.BandwidthSchedule
	nominal      []float64 // the fleet's nominal comm-time column

	// Scratch columns reused across extended rounds.
	elig, dep []bool
	comm      []float64
}

var _ round.DrawSource = (*tape)(nil)

// newTape indexes a parsed trace's draw records and compiles the spec's
// environment model for the overrun extension. The fleet's nominal
// comm-time column is bound later (bindFleet) because the fleet itself is
// built by the environment the tape is attached to.
func newTape(tr *trace.Trace, spec *Spec) (*tape, error) {
	t := &tape{
		byKey:        make(map[tapeKey]*trace.DrawsRecord, len(tr.Draws)),
		seed:         spec.Seed,
		availability: spec.Availability,
		jitter:       spec.CommJitter,
		bandwidth:    spec.bandwidthSchedule(),
	}
	var err error
	if t.churn, err = spec.churnSchedule(); err != nil {
		return nil, err
	}
	for i := range tr.Draws {
		d := &tr.Draws[i]
		key := tapeKey{episode: d.Episode, round: d.Round}
		if _, dup := t.byKey[key]; dup {
			return nil, fmt.Errorf("scenario: trace has duplicate draws for episode %d round %d", d.Episode, d.Round)
		}
		t.byKey[key] = d
	}
	return t, nil
}

// bindFleet copies the environment fleet's nominal comm-time column, the
// base the overrun extension scales. Called once, after the taped
// environment is built.
func (t *tape) bindFleet(commTime []float64) {
	t.nominal = append([]float64(nil), commTime...)
}

// setEpisode selects which recorded episode's draws subsequent rounds read.
func (t *tape) setEpisode(ep int) { t.episode = ep }

// RoundDraws implements round.DrawSource.
func (t *tape) RoundDraws(roundIndex, n int) (eligible, departing []bool, commTimes []float64, err error) {
	if rec, ok := t.byKey[tapeKey{episode: t.episode, round: roundIndex}]; ok {
		if len(rec.Eligible) != n || len(rec.CommTimes) != n ||
			(rec.Departing != nil && len(rec.Departing) != n) {
			return nil, nil, nil, fmt.Errorf(
				"scenario: episode %d round %d draws sized %d/%d for %d nodes",
				t.episode, roundIndex, len(rec.Eligible), len(rec.CommTimes), n)
		}
		return rec.Eligible, rec.Departing, rec.CommTimes, nil
	}
	// Past the end of the tape: extend deterministically from the spec.
	if t.nominal == nil {
		return nil, nil, nil, fmt.Errorf("scenario: tape fleet not bound")
	}
	if len(t.nominal) != n {
		return nil, nil, nil, fmt.Errorf("scenario: tape covers %d nodes, round asked for %d", len(t.nominal), n)
	}
	if len(t.elig) != n {
		t.elig = make([]bool, n)
		t.dep = make([]bool, n)
		t.comm = make([]float64, n)
	}
	bw := 1.0
	if t.bandwidth != nil {
		bw = t.bandwidth.Factor(roundIndex)
	}
	availOn := t.availability > 0 && t.availability < 1
	for i := 0; i < n; i++ {
		t.elig[i] = false
		t.dep[i] = false
		t.comm[i] = 0
		present, departs := true, false
		if t.churn != nil {
			present, departs = t.churn.Membership(roundIndex, i)
		}
		if !present {
			continue
		}
		t.dep[i] = departs
		if availOn && cellUnit(t.seed, availSalt, t.episode, roundIndex, i) >= t.availability {
			continue
		}
		comm := t.nominal[i] * bw
		if t.jitter > 0 {
			u := cellUnit(t.seed, jitterSalt, t.episode, roundIndex, i)
			comm *= 1 + (u*2-1)*t.jitter
		}
		t.comm[i] = comm
		t.elig[i] = true
	}
	return t.elig, t.dep, t.comm, nil
}
