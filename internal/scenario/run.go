package scenario

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"strings"

	"chiron/internal/experiment"
	"chiron/internal/mechanism"
)

// CellResult is one (mechanism, budget) grid cell's evaluation.
type CellResult struct {
	Mechanism string
	Budget    float64
	Result    mechanism.EpisodeResult
}

// Result is a full scenario run: the mechanism × budget grid in budget-major
// order, the layout the conformance suite digests.
type Result struct {
	Name  string
	Nodes int
	Cells []CellResult
}

// Cell addresses one (mechanism, budget) point of a spec's grid.
type Cell struct {
	// Mechanism is the canonical mechanism name (Kind.String()).
	Mechanism string
	// Kind is the resolved experiment mechanism kind.
	Kind experiment.MechanismKind
	// Budget is the cell's episode budget η.
	Budget float64
}

// Cells enumerates the spec's grid in its canonical budget-major order —
// the layout Run executes and the conformance digests pin.
func (s *Spec) Cells() ([]Cell, error) {
	cells := make([]Cell, 0, len(s.Budgets)*len(s.Mechanisms))
	for _, budget := range s.Budgets {
		for _, name := range s.Mechanisms {
			kind, err := MechanismKind(name)
			if err != nil {
				return nil, err
			}
			cells = append(cells, Cell{Mechanism: kind.String(), Kind: kind, Budget: budget})
		}
	}
	return cells, nil
}

// CellRun is one open grid cell: a freshly compiled environment and
// mechanism positioned before training. It exposes the cell's execution as
// resumable steps — one training episode at a time, then one evaluation —
// so a hosted session can pause between episodes while computing exactly
// what Run's batch path computes. The step decomposition is behaviorally
// identical to one mechanism.TrainAndEvaluate call: every Train
// implementation is a pure loop over Driver.RunEpisode, so N single-episode
// Train calls replay the same state trajectory as one N-episode call.
type CellRun struct {
	spec    *Spec
	cell    Cell
	m       mechanism.Mechanism
	trained int
}

// OpenCell compiles the cell's environment and mechanism. The spec must
// already be validated (all callers funnel through Validate).
func OpenCell(s *Spec, c Cell) (*CellRun, error) {
	env, _, err := s.BuildEnv(c.Budget, envHooks{})
	if err != nil {
		return nil, err
	}
	m, err := experiment.BuildMechanism(c.Kind, env, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: mechanism: %w", err)
	}
	return &CellRun{spec: s, cell: c, m: m}, nil
}

// Mechanism returns the cell's live mechanism.
func (c *CellRun) Mechanism() mechanism.Mechanism { return c.m }

// TrainRemaining reports how many training episodes are still owed. Static
// mechanisms owe none regardless of the spec's training length.
func (c *CellRun) TrainRemaining() int {
	if _, ok := c.m.(mechanism.Trainable); !ok {
		return 0
	}
	return c.spec.TrainEpisodes - c.trained
}

// TrainEpisode runs the next single training episode.
func (c *CellRun) TrainEpisode() (mechanism.EpisodeResult, error) {
	t, ok := c.m.(mechanism.Trainable)
	if !ok {
		return mechanism.EpisodeResult{}, fmt.Errorf("scenario: %s is not trainable", c.m.Name())
	}
	res, err := t.Train(1, nil)
	if err != nil {
		return mechanism.EpisodeResult{}, fmt.Errorf("mechanism: train %s: %w", c.m.Name(), err)
	}
	c.trained++
	return res[0], nil
}

// Evaluate averages the spec's deterministic evaluation episodes — the
// cell's final result.
func (c *CellRun) Evaluate() (mechanism.EpisodeResult, error) {
	res, err := mechanism.Evaluate(c.m, c.spec.EvalEpisodes)
	if err != nil {
		return mechanism.EpisodeResult{}, fmt.Errorf("mechanism: evaluate %s: %w", c.m.Name(), err)
	}
	return res, nil
}

// CellHooks thread a hosted session's control points into a cell job. Both
// fields are optional; the zero value runs the cell straight through.
type CellHooks struct {
	// Gate is consulted before every episode (each training episode and the
	// evaluation block): a gate error aborts the cell with that error — the
	// hook sessions use to pause and stop between episodes.
	Gate func() error
	// Episode observes each training episode's summary (eval=false) and the
	// cell's final averaged evaluation (eval=true). It is called from the
	// scheduler worker running the cell; observers synchronize internally.
	Episode func(c Cell, res mechanism.EpisodeResult, eval bool)
}

// CellJob wraps one cell as an experiment job with the hooks threaded in.
func CellJob(s *Spec, c Cell, hooks CellHooks) experiment.Job[mechanism.EpisodeResult] {
	return experiment.Job[mechanism.EpisodeResult]{
		Label: fmt.Sprintf("%s %s η=%v seed=%d", s.Name, c.Kind, c.Budget, s.Seed),
		Run: func() (mechanism.EpisodeResult, error) {
			run, err := OpenCell(s, c)
			if err != nil {
				return mechanism.EpisodeResult{}, err
			}
			for run.TrainRemaining() > 0 {
				if hooks.Gate != nil {
					if err := hooks.Gate(); err != nil {
						return mechanism.EpisodeResult{}, err
					}
				}
				res, err := run.TrainEpisode()
				if err != nil {
					return mechanism.EpisodeResult{}, err
				}
				if hooks.Episode != nil {
					hooks.Episode(c, res, false)
				}
			}
			if hooks.Gate != nil {
				if err := hooks.Gate(); err != nil {
					return mechanism.EpisodeResult{}, err
				}
			}
			res, err := run.Evaluate()
			if err == nil && hooks.Episode != nil {
				hooks.Episode(c, res, true)
			}
			return res, err
		},
	}
}

// Run compiles the spec and executes its mechanism × budget grid on the
// experiment plan scheduler: every cell is an independent job (own
// environment, own training), workers bounds concurrency (1 = serial, 0 =
// GOMAXPROCS), and the result is byte-identical at any worker count — the
// invariant the conformance goldens pin.
func Run(s *Spec, workers int) (*Result, error) {
	return RunGated(s, workers, CellHooks{})
}

// RunGated is Run with session hooks threaded into every cell job — the
// entry point internal/session drives. Run is RunGated with no hooks.
func RunGated(s *Spec, workers int, hooks CellHooks) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cells, err := s.Cells()
	if err != nil {
		return nil, err
	}
	jobs := make([]experiment.Job[mechanism.EpisodeResult], 0, len(cells))
	for _, c := range cells {
		jobs = append(jobs, CellJob(s, c, hooks))
	}
	results, err := experiment.Plan[mechanism.EpisodeResult]{
		Name:    "scenario:" + s.Name,
		Jobs:    jobs,
		Workers: workers,
	}.Execute()
	if err != nil {
		return nil, err
	}
	out := &Result{Name: s.Name, Nodes: s.NumNodes()}
	for i, c := range cells {
		out.Cells = append(out.Cells, CellResult{Mechanism: c.Mechanism, Budget: c.Budget, Result: results[i]})
	}
	return out, nil
}

// hashFloats folds float64 values into h bit-exactly: any one-ULP drift in
// any value changes the digest.
func hashFloats(h hash.Hash64, vals ...float64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// hashInts folds integers into h.
func hashInts(h hash.Hash64, vals ...int) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
}

// hashResult folds one episode result into h, every field bit-exact.
func hashResult(h hash.Hash64, r mechanism.EpisodeResult) {
	hashInts(h, r.Episode, r.Rounds)
	hashFloats(h, r.FinalAccuracy, r.ExteriorReturn, r.DiscountedReturn,
		r.InnerReturn, r.TimeEfficiency, r.TotalTime, r.BudgetSpent, r.ServerUtility)
}

// Digest returns a ULP-sensitive FNV-1a fingerprint of the full grid: cell
// order, mechanism names, budgets, and every result field at exact bits.
// Two runs agree on the digest iff they agree on every float of every cell.
func (r *Result) Digest() string {
	h := fnv.New64a()
	h.Write([]byte(r.Name))
	hashInts(h, r.Nodes, len(r.Cells))
	for _, c := range r.Cells {
		h.Write([]byte(c.Mechanism))
		hashFloats(h, c.Budget)
		hashResult(h, c.Result)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summary renders the grid as the stable text form the conformance goldens
// pin: one line per cell (rounded for human diffing) plus the exact-bits
// digest line, so a golden mismatch is readable and a sub-rounding drift is
// still caught.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d nodes, %d cells\n", r.Name, r.Nodes, len(r.Cells))
	for _, c := range r.Cells {
		res := c.Result
		fmt.Fprintf(&b, "  %-16s eta=%-8.6g rounds=%-4d acc=%.6f extret=%.6g spend=%.6g teff=%.6f util=%.6g\n",
			c.Mechanism, c.Budget, res.Rounds, res.FinalAccuracy, res.ExteriorReturn,
			res.BudgetSpent, res.TimeEfficiency, res.ServerUtility)
	}
	fmt.Fprintf(&b, "digest %s\n", r.Digest())
	return b.String()
}
