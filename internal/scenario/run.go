package scenario

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"strings"

	"chiron/internal/experiment"
	"chiron/internal/mechanism"
)

// CellResult is one (mechanism, budget) grid cell's evaluation.
type CellResult struct {
	Mechanism string
	Budget    float64
	Result    mechanism.EpisodeResult
}

// Result is a full scenario run: the mechanism × budget grid in budget-major
// order, the layout the conformance suite digests.
type Result struct {
	Name  string
	Nodes int
	Cells []CellResult
}

// Run compiles the spec and executes its mechanism × budget grid on the
// experiment plan scheduler: every cell is an independent job (own
// environment, own training), workers bounds concurrency (1 = serial, 0 =
// GOMAXPROCS), and the result is byte-identical at any worker count — the
// invariant the conformance goldens pin.
func Run(s *Spec, workers int) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	type cell struct {
		mech   string
		kind   experiment.MechanismKind
		budget float64
	}
	cells := make([]cell, 0, len(s.Budgets)*len(s.Mechanisms))
	jobs := make([]experiment.Job[mechanism.EpisodeResult], 0, cap(cells))
	for _, budget := range s.Budgets {
		for _, name := range s.Mechanisms {
			kind, err := MechanismKind(name)
			if err != nil {
				return nil, err
			}
			budget := budget
			cells = append(cells, cell{mech: kind.String(), kind: kind, budget: budget})
			jobs = append(jobs, experiment.Job[mechanism.EpisodeResult]{
				Label: fmt.Sprintf("%s %s η=%v seed=%d", s.Name, kind, budget, s.Seed),
				Run: func() (mechanism.EpisodeResult, error) {
					env, _, err := s.BuildEnv(budget, envHooks{})
					if err != nil {
						return mechanism.EpisodeResult{}, err
					}
					m, err := experiment.BuildMechanism(kind, env, s.Seed)
					if err != nil {
						return mechanism.EpisodeResult{}, err
					}
					return mechanism.TrainAndEvaluate(m, s.TrainEpisodes, s.EvalEpisodes)
				},
			})
		}
	}
	results, err := experiment.Plan[mechanism.EpisodeResult]{
		Name:    "scenario:" + s.Name,
		Jobs:    jobs,
		Workers: workers,
	}.Execute()
	if err != nil {
		return nil, err
	}
	out := &Result{Name: s.Name, Nodes: s.NumNodes()}
	for i, c := range cells {
		out.Cells = append(out.Cells, CellResult{Mechanism: c.mech, Budget: c.budget, Result: results[i]})
	}
	return out, nil
}

// hashFloats folds float64 values into h bit-exactly: any one-ULP drift in
// any value changes the digest.
func hashFloats(h hash.Hash64, vals ...float64) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// hashInts folds integers into h.
func hashInts(h hash.Hash64, vals ...int) {
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
}

// hashResult folds one episode result into h, every field bit-exact.
func hashResult(h hash.Hash64, r mechanism.EpisodeResult) {
	hashInts(h, r.Episode, r.Rounds)
	hashFloats(h, r.FinalAccuracy, r.ExteriorReturn, r.DiscountedReturn,
		r.InnerReturn, r.TimeEfficiency, r.TotalTime, r.BudgetSpent, r.ServerUtility)
}

// Digest returns a ULP-sensitive FNV-1a fingerprint of the full grid: cell
// order, mechanism names, budgets, and every result field at exact bits.
// Two runs agree on the digest iff they agree on every float of every cell.
func (r *Result) Digest() string {
	h := fnv.New64a()
	h.Write([]byte(r.Name))
	hashInts(h, r.Nodes, len(r.Cells))
	for _, c := range r.Cells {
		h.Write([]byte(c.Mechanism))
		hashFloats(h, c.Budget)
		hashResult(h, c.Result)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Summary renders the grid as the stable text form the conformance goldens
// pin: one line per cell (rounded for human diffing) plus the exact-bits
// digest line, so a golden mismatch is readable and a sub-rounding drift is
// still caught.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d nodes, %d cells\n", r.Name, r.Nodes, len(r.Cells))
	for _, c := range r.Cells {
		res := c.Result
		fmt.Fprintf(&b, "  %-16s eta=%-8.6g rounds=%-4d acc=%.6f extret=%.6g spend=%.6g teff=%.6f util=%.6g\n",
			c.Mechanism, c.Budget, res.Rounds, res.FinalAccuracy, res.ExteriorReturn,
			res.BudgetSpent, res.TimeEfficiency, res.ServerUtility)
	}
	fmt.Fprintf(&b, "digest %s\n", r.Digest())
	return b.String()
}
