package scenario

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite conformance golden files")

// conformanceSpec returns the library scenario as the conformance suite
// runs it: fig4-grid — the paper-scale grid — is scaled down so the whole
// corpus stays CI-cheap while still driving all three DRL mechanisms.
func conformanceSpec(t *testing.T, name string) *Spec {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("library scenario %q missing", name)
	}
	if name == "fig4-grid" {
		s = s.Scale(0.01)
	}
	return s
}

// TestConformanceGoldens pins every library scenario's full-grid summary —
// readable per-cell lines plus the ULP-exact digest — against a golden
// file. Any drift in the environment model, the compiler, a mechanism, or
// the scheduler shows up as a digest mismatch here before it can silently
// shift experiment results. Regenerate with: go test ./internal/scenario
// -run TestConformanceGoldens -update
func TestConformanceGoldens(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s := conformanceSpec(t, name)
			res, err := Run(s, 0)
			if err != nil {
				t.Fatalf("Run(%s): %v", name, err)
			}
			got := []byte(res.Summary())
			golden := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("summary drifted from golden %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestRunWorkerInvariance asserts the conformance invariant the goldens
// rely on: a scenario grid digests identically whether its cells run
// serially or concurrently.
func TestRunWorkerInvariance(t *testing.T) {
	s := conformanceSpec(t, "budget-pacing")
	serial, err := Run(s, 1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := Run(s, 4)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial.Digest() != parallel.Digest() {
		t.Errorf("digest depends on worker count: serial %s, 4 workers %s",
			serial.Digest(), parallel.Digest())
	}
}

// TestDigestDetectsOneULP proves the digest is bit-sensitive: nudging one
// result field by one ULP must change it.
func TestDigestDetectsOneULP(t *testing.T) {
	s := conformanceSpec(t, "paper-baseline")
	res, err := Run(s, 1)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	before := res.Digest()
	v := res.Cells[0].Result.FinalAccuracy
	res.Cells[0].Result.FinalAccuracy = math.Nextafter(v, math.Inf(1))
	if after := res.Digest(); after == before {
		t.Errorf("digest unchanged by one-ULP drift: %s", before)
	}
}
