package scenario

import (
	"fmt"
	"math/rand"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/round"
)

// profile is a named hardware archetype: multipliers over the paper's
// Sec. VI-A fleet constants. A class's own scale factors stack on top.
type profile struct {
	freq, comm, data, reserve float64
}

// The built-in device profiles. "paper" is the identity — the Sec. VI-A
// fleet exactly; the others shift the compute/communication/price balance
// the way real device tiers do.
var profiles = map[string]profile{
	"paper":  {freq: 1, comm: 1, data: 1, reserve: 1},
	"phone":  {freq: 0.6, comm: 1.3, data: 0.8, reserve: 1},
	"laptop": {freq: 1.5, comm: 0.8, data: 1.2, reserve: 1},
	"iot":    {freq: 0.25, comm: 2.0, data: 0.5, reserve: 0.5},
	"server": {freq: 3.0, comm: 0.4, data: 1.5, reserve: 2},
}

// ProfileNames returns the built-in device profile names.
func ProfileNames() []string {
	return []string{"paper", "phone", "laptop", "iot", "server"}
}

// datasetPreset resolves a spec dataset name to the calibrated accuracy
// preset.
func datasetPreset(name string) (accuracy.Preset, error) {
	switch name {
	case "mnist":
		return accuracy.PresetMNIST, nil
	case "fashion", "fashion-mnist":
		return accuracy.PresetFashion, nil
	case "cifar", "cifar-10":
		return accuracy.PresetCIFAR, nil
	case "mnist-large", "mnist-100nodes":
		return accuracy.PresetMNISTLarge, nil
	default:
		return 0, fmt.Errorf("%w: %q (want mnist, fashion, cifar, or mnist-large)", ErrUnknownDataset, name)
	}
}

// scale returns v, or 1 when the spec left the factor at its zero value.
func scale(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// buildFleet draws the composed fleet: each class's nodes come from the
// paper's DefaultFleetSpec with the profile (and per-class) multipliers
// applied, drawn from the shared rng in class order so the fleet is a pure
// function of (classes, seed). Node IDs are global across classes.
func (s *Spec) buildFleet(rng *rand.Rand) ([]*device.Node, error) {
	nodes := make([]*device.Node, 0, s.NumNodes())
	for i, c := range s.Classes {
		p, ok := profiles[c.Profile]
		if !ok {
			return nil, fmt.Errorf("%w: class %d names profile %q", ErrUnknownClass, i, c.Profile)
		}
		fs := device.DefaultFleetSpec(c.Count)
		freq := p.freq * scale(c.FreqScale)
		comm := p.comm * scale(c.CommScale)
		data := p.data * scale(c.DataScale)
		reserve := p.reserve * scale(c.ReserveScale)
		fs.FreqMin *= freq
		fs.FreqMaxLow *= freq
		fs.FreqMaxHigh *= freq
		fs.CommTimeMin *= comm
		fs.CommTimeMax *= comm
		fs.DataBitsMin *= data
		fs.DataBitsMax *= data
		fs.ReserveMax *= reserve
		classNodes, err := device.NewFleet(rng, fs)
		if err != nil {
			return nil, fmt.Errorf("scenario: class %d (%s): %w", i, c.Profile, err)
		}
		for _, n := range classNodes {
			n.ID = len(nodes)
			nodes = append(nodes, n)
		}
	}
	return nodes, nil
}

// buildAccuracy constructs the dataset's calibrated curve bound to rng,
// with the non-IID stretch applied: severity s slows both exponential round
// constants by (1+s) and amplifies the measurement noise by (1+s) —
// heterogeneous shards converge slower and noisier, so participation (and
// therefore incentive spend) buys less per round.
func (s *Spec) buildAccuracy(rng *rand.Rand) (*accuracy.SurrogateCurve, error) {
	preset, err := datasetPreset(s.Dataset)
	if err != nil {
		return nil, err
	}
	curve, err := accuracy.NewPresetCurve(rng, preset, s.NumNodes())
	if err != nil {
		return nil, fmt.Errorf("scenario: accuracy: %w", err)
	}
	if s.NonIID > 0 {
		stretch := 1 + s.NonIID
		curve.Tau *= stretch
		if curve.Tau2 > 0 {
			curve.Tau2 *= stretch
		}
		curve.NoiseStd *= stretch
		if _, err := curve.Reset(); err != nil {
			return nil, fmt.Errorf("scenario: accuracy: %w", err)
		}
	}
	return curve, nil
}

// churnSchedule compiles the spec's churn block into a faults schedule.
// Returns (nil, nil) when the spec declares no churn.
func (s *Spec) churnSchedule() (faults.ChurnSchedule, error) {
	c := s.Churn
	if c == nil {
		return nil, nil
	}
	exact := c.Script != "" || len(c.Windows) > 0
	if exact && c.Rates != nil {
		return nil, fmt.Errorf("scenario: churn declares both an exact schedule (script/windows) and sampled rates")
	}
	if c.Rates != nil {
		rates := faults.ChurnRates{
			Depart:        c.Rates.Depart,
			Arrive:        c.Rates.Arrive,
			InitialAbsent: c.Rates.InitialAbsent,
		}
		sampler, err := faults.NewChurnSampler(rates, s.Seed+7)
		if err != nil {
			return nil, fmt.Errorf("scenario: churn: %w", err)
		}
		return sampler, nil
	}
	if !exact {
		return nil, nil
	}
	var events []faults.ChurnEvent
	if c.Script != "" {
		parsed, err := faults.ParseChurnScript(c.Script)
		if err != nil {
			return nil, fmt.Errorf("scenario: churn: %w", err)
		}
		events = parsed.Events()
	}
	if err := validateWindows(c.Windows, s.NumNodes()); err != nil {
		return nil, err
	}
	for _, w := range c.Windows {
		if w.Kind == "visit" {
			// Absent until From, present through To, gone after.
			events = append(events,
				faults.ChurnEvent{Round: w.From, Node: w.Node, Kind: faults.ChurnArrive},
				faults.ChurnEvent{Round: w.To, Node: w.Node, Kind: faults.ChurnDepart})
		} else {
			// Away: departs mid-round From, back at To+1.
			events = append(events,
				faults.ChurnEvent{Round: w.From, Node: w.Node, Kind: faults.ChurnDepart},
				faults.ChurnEvent{Round: w.To + 1, Node: w.Node, Kind: faults.ChurnArrive})
		}
	}
	script, err := faults.NewChurnScript(events)
	if err != nil {
		// Script events and window events can only conflict with each other
		// (each form is self-consistent), so this is an overlap in spirit.
		return nil, fmt.Errorf("%w: %v", ErrChurnOverlap, err)
	}
	if err := script.Validate(s.NumNodes()); err != nil {
		return nil, fmt.Errorf("scenario: churn: %w", err)
	}
	return script, nil
}

// faultRates compiles the spec's fault block into validated sampler rates.
func (s *Spec) faultRates() (faults.Rates, error) {
	f := s.Faults
	if f == nil {
		return faults.Rates{}, nil
	}
	rates := faults.Rates{
		Crash:          f.Crash,
		Straggle:       f.Straggle,
		Drop:           f.Drop,
		Corrupt:        f.Corrupt,
		StraggleFactor: f.StraggleFactor,
	}
	if err := rates.Validate(); err != nil {
		return faults.Rates{}, fmt.Errorf("scenario: faults: %w", err)
	}
	return rates, nil
}

// bandwidthSchedule compiles the piecewise-constant uplink regime; nil when
// the spec declares none.
func (s *Spec) bandwidthSchedule() round.BandwidthSchedule {
	if len(s.Bandwidth) == 0 {
		return nil
	}
	return phaseSchedule(s.Bandwidth)
}

// phaseSchedule implements round.BandwidthSchedule over validated phases
// (strictly ascending FromRound, positive factors). The factor before the
// first phase is 1, the nominal bandwidth.
type phaseSchedule []BandwidthPhase

// Factor implements round.BandwidthSchedule.
func (p phaseSchedule) Factor(roundIndex int) float64 {
	f := 1.0
	for _, phase := range p {
		if phase.FromRound > roundIndex {
			break
		}
		f = phase.Factor
	}
	return f
}

// envHooks carries the replay-engine attachments BuildEnv threads into the
// environment: exactly one of draws (replay) or recorder (record) is set,
// or neither (a plain run).
type envHooks struct {
	draws    round.DrawSource
	recorder round.DrawRecorder
}

// BuildEnv compiles the spec into an edge-learning environment at one
// budget. It also returns the accuracy curve's retained RNG: Record and
// Replay reseed it before each evaluation episode (see evalSeed) so the
// accuracy measurement noise of episode e is reproducible regardless of how
// much randomness training consumed first.
//
// Seed discipline: seed drives the fleet draw, seed+1 the accuracy noise,
// seed+3 the environment's availability/jitter draws, seed+5 the fault
// sampler, and seed+7 the churn sampler — all deterministic functions of
// the spec seed, so two compilations of the same spec are identical.
func (s *Spec) BuildEnv(budget float64, hooks envHooks) (*edgeenv.Env, *rand.Rand, error) {
	if budget <= 0 {
		return nil, nil, fmt.Errorf("%w: η=%v", ErrNegativeBudget, budget)
	}
	nodes, err := s.buildFleet(rand.New(rand.NewSource(s.Seed)))
	if err != nil {
		return nil, nil, err
	}
	accRng := rand.New(rand.NewSource(s.Seed + 1))
	curve, err := s.buildAccuracy(accRng)
	if err != nil {
		return nil, nil, err
	}
	cfg := edgeenv.DefaultConfig(nodes, curve, budget)
	if s.Lambda > 0 {
		cfg.Lambda = s.Lambda
	}
	if s.TimeWeight > 0 {
		cfg.TimeWeight = s.TimeWeight
	}
	if s.MaxRounds > 0 {
		cfg.MaxRounds = s.MaxRounds
	}
	cfg.Availability = s.Availability
	cfg.CommJitter = s.CommJitter
	cfg.RoundDeadline = s.RoundDeadline
	cfg.MaxRetries = s.MaxRetries
	cfg.RetryBackoff = s.RetryBackoff
	cfg.FailurePayment = s.FailurePayment
	cfg.MinQuorum = s.MinQuorum
	if hooks.draws != nil {
		// A replay source supplies every draw verbatim: the RNG, churn
		// schedule, and bandwidth regime must not be consulted at all.
		cfg.Draws = hooks.draws
	} else {
		cfg.Rng = rand.New(rand.NewSource(s.Seed + 3))
		cfg.Bandwidth = s.bandwidthSchedule()
		cfg.Churn, err = s.churnSchedule()
		if err != nil {
			return nil, nil, err
		}
		cfg.DrawRecorder = hooks.recorder
	}
	rates, err := s.faultRates()
	if err != nil {
		return nil, nil, err
	}
	if rates.Any() {
		sampler, err := faults.NewSampler(rates, s.Seed+5)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: faults: %w", err)
		}
		cfg.Faults = sampler
	}
	env, err := edgeenv.New(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: env: %w", err)
	}
	return env, accRng, nil
}
