package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"chiron/internal/trace"
)

// recordToTrace records one cell of the named library scenario into memory
// and parses the trace back.
func recordToTrace(t *testing.T, name string) (*Spec, *trace.Trace, *EpisodeSet) {
	t.Helper()
	s, ok := Lookup(name)
	if !ok {
		t.Fatalf("library scenario %q missing", name)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	rec, err := Record(s, "", 0, tw)
	if err != nil {
		t.Fatalf("Record(%s): %v", name, err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("read recorded trace: %v", err)
	}
	return s, tr, rec
}

// TestSameMechanismReplayBitIdentical is the replay engine's core contract,
// exercised on every environment regime the library covers: replaying a
// recording with the recorded mechanism and budget reproduces every episode
// summary and every per-round vector bit-for-bit.
func TestSameMechanismReplayBitIdentical(t *testing.T) {
	for _, name := range []string{
		"paper-baseline",   // clean fleet, no draws at all
		"flaky-network",    // availability + jitter draws
		"churny-fleet",     // sampled churn over a flaky network
		"flash-crowd",      // churn windows plus a trained Greedy policy
		"faulty-fleet",     // injected faults under a deadline
		"congested-uplink", // time-varying bandwidth regime
	} {
		t.Run(name, func(t *testing.T) {
			_, tr, rec := recordToTrace(t, name)
			rep, err := Replay(tr, ReplayOptions{})
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if rep.Counterfactual {
				t.Errorf("zero-option replay marked counterfactual")
			}
			if !reflect.DeepEqual(rep.Episodes, rec.Episodes) {
				t.Errorf("episode results differ\n got %+v\nwant %+v", rep.Episodes, rec.Episodes)
			}
			if !reflect.DeepEqual(rep.Rounds, rec.Rounds) {
				t.Errorf("round records differ (%d vs %d rounds)", len(rep.Rounds), len(rec.Rounds))
			}
			if rep.Digest() != rec.Digest() {
				t.Errorf("digest: replay %s, recording %s", rep.Digest(), rec.Digest())
			}
		})
	}
}

// TestReplayIsDeterministic: two replays of the same trace agree exactly.
func TestReplayIsDeterministic(t *testing.T) {
	_, tr, _ := recordToTrace(t, "flaky-network")
	a, err := Replay(tr, ReplayOptions{Mechanism: "equal-time"})
	if err != nil {
		t.Fatalf("replay a: %v", err)
	}
	b, err := Replay(tr, ReplayOptions{Mechanism: "equal-time"})
	if err != nil {
		t.Fatalf("replay b: %v", err)
	}
	if a.Digest() != b.Digest() {
		t.Errorf("counterfactual replay not deterministic: %s vs %s", a.Digest(), b.Digest())
	}
}

// TestCounterfactualMechanism replays a Uniform recording with EqualTime:
// the run must succeed against the pinned draws, be flagged counterfactual,
// and actually differ from the recording.
func TestCounterfactualMechanism(t *testing.T) {
	_, tr, rec := recordToTrace(t, "flaky-network")
	rep, err := Replay(tr, ReplayOptions{Mechanism: "equal-time"})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rep.Counterfactual {
		t.Errorf("mechanism override not marked counterfactual")
	}
	if rep.Mechanism != "EqualTime-Oracle" {
		t.Errorf("replayed mechanism %q", rep.Mechanism)
	}
	if rep.Digest() == rec.Digest() {
		t.Errorf("different mechanism produced the recording's digest %s", rec.Digest())
	}
	if len(rep.Episodes) != len(rec.Episodes) {
		t.Errorf("replayed %d episodes, recorded %d", len(rep.Episodes), len(rec.Episodes))
	}
}

// TestCounterfactualBudgetOutlivesTape doubles the recorded budget: the
// replayed episodes run far past the end of the recorded draws, exercising
// the deterministic tape extension, and the counterfactual ledger must
// reflect the bigger purse.
func TestCounterfactualBudgetOutlivesTape(t *testing.T) {
	_, tr, rec := recordToTrace(t, "flaky-network")
	rep, err := Replay(tr, ReplayOptions{Budget: 2 * rec.Budget})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rep.Counterfactual {
		t.Errorf("budget override not marked counterfactual")
	}
	if rep.Episodes[0].Rounds <= rec.Episodes[0].Rounds {
		t.Errorf("doubled budget played %d rounds, recorded run played %d — tape extension never engaged",
			rep.Episodes[0].Rounds, rec.Episodes[0].Rounds)
	}
	if rep.Episodes[0].BudgetSpent <= rec.Episodes[0].BudgetSpent {
		t.Errorf("doubled budget spent %v <= recorded %v",
			rep.Episodes[0].BudgetSpent, rec.Episodes[0].BudgetSpent)
	}
	// The extension must itself be deterministic.
	again, err := Replay(tr, ReplayOptions{Budget: 2 * rec.Budget})
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if again.Digest() != rep.Digest() {
		t.Errorf("tape extension not deterministic: %s vs %s", again.Digest(), rep.Digest())
	}
}

// TestCounterfactualTrainedMechanism replays a Greedy recording with the
// same kind restored from the checkpoint, and with a Uniform override —
// covering the checkpoint-restore and no-training counterfactual paths on
// a trained recording.
func TestCounterfactualTrainedMechanism(t *testing.T) {
	_, tr, rec := recordToTrace(t, "flash-crowd")
	if len(tr.Header.Checkpoint) == 0 {
		t.Fatalf("trained Greedy recording carries no checkpoint")
	}
	same, err := Replay(tr, ReplayOptions{})
	if err != nil {
		t.Fatalf("same-mechanism replay: %v", err)
	}
	if same.Digest() != rec.Digest() {
		t.Errorf("trained same-mechanism replay drifted: %s vs %s", same.Digest(), rec.Digest())
	}
	uni, err := Replay(tr, ReplayOptions{Mechanism: "uniform"})
	if err != nil {
		t.Fatalf("uniform counterfactual: %v", err)
	}
	if uni.Digest() == rec.Digest() {
		t.Errorf("uniform counterfactual reproduced the Greedy digest")
	}
}

// TestReplayRequiresHeader: plain training traces (no header) are not
// replayable and must say so.
func TestReplayRequiresHeader(t *testing.T) {
	if _, err := Replay(&trace.Trace{}, ReplayOptions{}); err == nil ||
		!strings.Contains(err.Error(), "no header") {
		t.Errorf("headerless replay error = %v", err)
	}
}

// TestRecordHeader checks the header embeds everything a replay needs.
func TestRecordHeader(t *testing.T) {
	s, tr, _ := recordToTrace(t, "flaky-network")
	h := tr.Header
	if h == nil {
		t.Fatal("recorded trace has no header")
	}
	if h.Version != trace.Version {
		t.Errorf("header version %d, want %d", h.Version, trace.Version)
	}
	if h.Mechanism != "Uniform" || h.Budget != s.Budgets[0] || h.Seed != s.Seed {
		t.Errorf("header = %s η=%v seed=%d, want %s η=%v seed=%d",
			h.Mechanism, h.Budget, h.Seed, "Uniform", s.Budgets[0], s.Seed)
	}
	if h.Nodes != s.NumNodes() || h.EvalEpisodes != s.EvalEpisodes {
		t.Errorf("header nodes=%d eval=%d", h.Nodes, h.EvalEpisodes)
	}
	embedded, err := Parse(h.Scenario)
	if err != nil {
		t.Fatalf("embedded spec: %v", err)
	}
	if embedded.Name != s.Name {
		t.Errorf("embedded spec %q, want %q", embedded.Name, s.Name)
	}
	if len(tr.Draws) == 0 {
		t.Error("recorded trace has no draw records")
	}
	if len(tr.Rounds) == 0 || len(tr.Episodes) != s.EvalEpisodes {
		t.Errorf("recorded trace has %d rounds, %d episodes", len(tr.Rounds), len(tr.Episodes))
	}
}

// TestRecorderAttachmentIsFree: building an environment with a (disabled)
// recorder attached must not change what plays out — the recorder forces
// round.Respond's draw pre-pass, which consumes no RNG and alters no
// results. This is the property that lets Record train with the recorder
// attached and still produce the same policy an unrecorded run would.
func TestRecorderAttachmentIsFree(t *testing.T) {
	for _, name := range []string{"paper-baseline", "flaky-network", "churny-fleet"} {
		t.Run(name, func(t *testing.T) {
			s, _ := Lookup(name)
			run := func(hooks envHooks) []float64 {
				env, _, err := s.BuildEnv(s.Budgets[0], hooks)
				if err != nil {
					t.Fatalf("build env: %v", err)
				}
				if err := env.Reset(); err != nil {
					t.Fatalf("reset: %v", err)
				}
				prices := make([]float64, env.NumNodes())
				var accs []float64
				for i := range prices {
					prices[i] = env.MaxTotalPrice() / float64(2*len(prices))
				}
				for !env.Done() {
					res, err := env.Step(prices)
					if err != nil {
						t.Fatalf("step: %v", err)
					}
					accs = append(accs, res.Round.Accuracy)
				}
				return accs
			}
			plain := run(envHooks{})
			recorded := run(envHooks{recorder: &recorder{}})
			if !reflect.DeepEqual(plain, recorded) {
				t.Errorf("disabled recorder changed the episode: %d vs %d rounds", len(plain), len(recorded))
			}
		})
	}
}
