package scenario

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"os"

	"chiron/internal/experiment"
	"chiron/internal/mechanism"
	"chiron/internal/trace"
)

// EpisodeSet is the common shape of a recorded or replayed evaluation: the
// per-episode summaries and per-round records of one (mechanism, budget)
// cell, with a ULP-sensitive digest over all of it. Same-mechanism replay
// must reproduce the recorded set bit-for-bit — the property the replay
// conformance tests and the propcheck suite pin.
type EpisodeSet struct {
	Scenario  string
	Mechanism string
	Budget    float64
	Episodes  []mechanism.EpisodeResult
	Rounds    []trace.RoundRecord
}

// hashRoundRecord folds one round record into h bit-exactly.
func hashRoundRecord(h hash.Hash64, r *trace.RoundRecord) {
	hashInts(h, r.Episode, r.Round, r.Participants, r.Completed)
	hashFloats(h, r.Payment, r.Accuracy)
	hashFloats(h, r.Prices...)
	hashFloats(h, r.Freqs...)
	hashFloats(h, r.Times...)
	for _, o := range r.Outcomes {
		h.Write([]byte(o))
	}
}

// Digest returns a ULP-sensitive FNV-1a fingerprint over every episode
// summary and every per-round vector of the set.
func (s *EpisodeSet) Digest() string {
	h := fnv.New64a()
	h.Write([]byte(s.Scenario))
	h.Write([]byte(s.Mechanism))
	hashFloats(h, s.Budget)
	hashInts(h, len(s.Episodes), len(s.Rounds))
	for _, e := range s.Episodes {
		hashResult(h, e)
	}
	for i := range s.Rounds {
		hashRoundRecord(h, &s.Rounds[i])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// saveCheckpointBytes round-trips a mechanism checkpoint through a temp
// file (the Checkpointer surface is path-based) and returns its JSON.
func saveCheckpointBytes(cp mechanism.Checkpointer) (json.RawMessage, error) {
	f, err := os.CreateTemp("", "chiron-ckpt-*.json")
	if err != nil {
		return nil, fmt.Errorf("scenario: checkpoint temp: %w", err)
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if err := cp.SaveCheckpoint(path); err != nil {
		return nil, fmt.Errorf("scenario: save checkpoint: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read checkpoint: %w", err)
	}
	return data, nil
}

// loadCheckpointBytes restores a checkpoint blob into cp via a temp file.
func loadCheckpointBytes(cp mechanism.Checkpointer, data []byte) error {
	f, err := os.CreateTemp("", "chiron-ckpt-*.json")
	if err != nil {
		return fmt.Errorf("scenario: checkpoint temp: %w", err)
	}
	path := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("scenario: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("scenario: write checkpoint: %w", err)
	}
	defer os.Remove(path)
	if err := cp.LoadCheckpoint(path); err != nil {
		return fmt.Errorf("scenario: load checkpoint: %w", err)
	}
	return nil
}

// Record runs one (mechanism, budget) cell of the scenario with the round
// pipeline's draw capture enabled and streams a replayable trace to tw:
// a versioned header embedding the spec and the mechanism's post-training
// checkpoint, then — per evaluation episode — every round's environment
// draws, the committed round records, and the episode summary.
//
// mech selects the recorded mechanism ("" = the spec's first); budget
// selects the cell (0 = the spec's first). Training episodes run with
// capture disabled — only the deterministic evaluation is recorded. Before
// each evaluation episode the accuracy RNG is reseeded from
// evalSeed(seed, ep), making each episode's measurement-noise stream
// independently reproducible: the exact discipline Replay repeats.
func Record(s *Spec, mech string, budget float64, tw *trace.Writer) (*EpisodeSet, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if mech == "" {
		mech = s.Mechanisms[0]
	}
	kind, err := MechanismKind(mech)
	if err != nil {
		return nil, err
	}
	if budget == 0 {
		budget = s.Budgets[0]
	}
	rec := &recorder{}
	env, accRng, err := s.BuildEnv(budget, envHooks{recorder: rec})
	if err != nil {
		return nil, err
	}
	m, err := experiment.BuildMechanism(kind, env, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: mechanism: %w", err)
	}
	if t, ok := m.(mechanism.Trainable); ok && s.TrainEpisodes > 0 {
		if _, err := t.Train(s.TrainEpisodes, nil); err != nil {
			return nil, fmt.Errorf("scenario: train %s: %w", m.Name(), err)
		}
	}
	header := trace.HeaderRecord{
		Mechanism:    kind.String(),
		Budget:       budget,
		Seed:         s.Seed,
		Nodes:        s.NumNodes(),
		EvalEpisodes: s.EvalEpisodes,
	}
	if header.Scenario, err = json.Marshal(s); err != nil {
		return nil, fmt.Errorf("scenario: marshal spec: %w", err)
	}
	if cp, ok := m.(mechanism.Checkpointer); ok {
		if header.Checkpoint, err = saveCheckpointBytes(cp); err != nil {
			return nil, err
		}
	}
	if err := tw.WriteHeader(header); err != nil {
		return nil, err
	}
	out := &EpisodeSet{Scenario: s.Name, Mechanism: kind.String(), Budget: budget}
	for ep := 1; ep <= s.EvalEpisodes; ep++ {
		accRng.Seed(evalSeed(s.Seed, ep))
		rec.begin(ep)
		res, err := m.RunEpisode(false)
		if err != nil {
			return nil, fmt.Errorf("scenario: record episode %d: %w", ep, err)
		}
		res.Episode = ep
		for _, d := range rec.recs {
			if err := tw.WriteDraws(d); err != nil {
				return nil, err
			}
		}
		rounds := env.Ledger().Rounds()
		for i := range rounds {
			if err := tw.WriteRound(ep, &rounds[i]); err != nil {
				return nil, err
			}
			out.Rounds = append(out.Rounds, trace.NewRoundRecord(ep, &rounds[i]))
		}
		if err := tw.WriteEpisode(res); err != nil {
			return nil, err
		}
		out.Episodes = append(out.Episodes, res)
	}
	rec.enabled = false
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	return out, nil
}
