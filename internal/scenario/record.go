package scenario

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"
	"math/rand"
	"os"

	"chiron/internal/edgeenv"
	"chiron/internal/experiment"
	"chiron/internal/mechanism"
	"chiron/internal/trace"
)

// EpisodeSet is the common shape of a recorded or replayed evaluation: the
// per-episode summaries and per-round records of one (mechanism, budget)
// cell, with a ULP-sensitive digest over all of it. Same-mechanism replay
// must reproduce the recorded set bit-for-bit — the property the replay
// conformance tests and the propcheck suite pin.
type EpisodeSet struct {
	Scenario  string
	Mechanism string
	Budget    float64
	Episodes  []mechanism.EpisodeResult
	Rounds    []trace.RoundRecord
}

// hashRoundRecord folds one round record into h bit-exactly.
func hashRoundRecord(h hash.Hash64, r *trace.RoundRecord) {
	hashInts(h, r.Episode, r.Round, r.Participants, r.Completed)
	hashFloats(h, r.Payment, r.Accuracy)
	hashFloats(h, r.Prices...)
	hashFloats(h, r.Freqs...)
	hashFloats(h, r.Times...)
	for _, o := range r.Outcomes {
		h.Write([]byte(o))
	}
}

// Digest returns a ULP-sensitive FNV-1a fingerprint over every episode
// summary and every per-round vector of the set.
func (s *EpisodeSet) Digest() string {
	h := fnv.New64a()
	h.Write([]byte(s.Scenario))
	h.Write([]byte(s.Mechanism))
	hashFloats(h, s.Budget)
	hashInts(h, len(s.Episodes), len(s.Rounds))
	for _, e := range s.Episodes {
		hashResult(h, e)
	}
	for i := range s.Rounds {
		hashRoundRecord(h, &s.Rounds[i])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// saveCheckpointBytes round-trips a mechanism checkpoint through a temp
// file (the Checkpointer surface is path-based) and returns its JSON.
func saveCheckpointBytes(cp mechanism.Checkpointer) (json.RawMessage, error) {
	f, err := os.CreateTemp("", "chiron-ckpt-*.json")
	if err != nil {
		return nil, fmt.Errorf("scenario: checkpoint temp: %w", err)
	}
	path := f.Name()
	f.Close()
	defer os.Remove(path)
	if err := cp.SaveCheckpoint(path); err != nil {
		return nil, fmt.Errorf("scenario: save checkpoint: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: read checkpoint: %w", err)
	}
	return data, nil
}

// loadCheckpointBytes restores a checkpoint blob into cp via a temp file.
func loadCheckpointBytes(cp mechanism.Checkpointer, data []byte) error {
	f, err := os.CreateTemp("", "chiron-ckpt-*.json")
	if err != nil {
		return fmt.Errorf("scenario: checkpoint temp: %w", err)
	}
	path := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("scenario: write checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return fmt.Errorf("scenario: write checkpoint: %w", err)
	}
	defer os.Remove(path)
	if err := cp.LoadCheckpoint(path); err != nil {
		return fmt.Errorf("scenario: load checkpoint: %w", err)
	}
	return nil
}

// RecordRun is one open recording cell: a draw-capturing environment and
// mechanism whose execution is exposed as resumable steps — one training
// episode at a time, then one recorded evaluation episode at a time — so a
// hosted session can pause between episodes while streaming exactly the
// trace Record streams. The versioned header (spec + post-training
// checkpoint) is written lazily before the first recorded episode, after
// training has finished.
type RecordRun struct {
	spec       *Spec
	kind       experiment.MechanismKind
	budget     float64
	rec        *recorder
	env        *edgeenv.Env
	accRng     *rand.Rand
	m          mechanism.Mechanism
	tw         *trace.Writer
	trained    int
	headerDone bool
	out        *EpisodeSet
}

// StartRecord validates the spec, resolves the recorded cell (mech "" = the
// spec's first mechanism, budget 0 = its first budget), and compiles the
// draw-capturing environment and mechanism. The caller then drains
// TrainEpisode until TrainRemaining reaches zero, records episodes
// 1..Episodes() in order, and Finishes.
func StartRecord(s *Spec, mech string, budget float64, tw *trace.Writer) (*RecordRun, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if mech == "" {
		mech = s.Mechanisms[0]
	}
	kind, err := MechanismKind(mech)
	if err != nil {
		return nil, err
	}
	if budget == 0 {
		budget = s.Budgets[0]
	}
	rec := &recorder{}
	env, accRng, err := s.BuildEnv(budget, envHooks{recorder: rec})
	if err != nil {
		return nil, err
	}
	m, err := experiment.BuildMechanism(kind, env, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: mechanism: %w", err)
	}
	return &RecordRun{
		spec: s, kind: kind, budget: budget,
		rec: rec, env: env, accRng: accRng, m: m, tw: tw,
		out: &EpisodeSet{Scenario: s.Name, Mechanism: kind.String(), Budget: budget},
	}, nil
}

// Mechanism returns the recorded cell's live mechanism.
func (r *RecordRun) Mechanism() mechanism.Mechanism { return r.m }

// Episodes reports how many evaluation episodes the recording covers.
func (r *RecordRun) Episodes() int { return r.spec.EvalEpisodes }

// TrainRemaining reports how many training episodes are still owed before
// the recorded evaluation may begin.
func (r *RecordRun) TrainRemaining() int {
	if _, ok := r.m.(mechanism.Trainable); !ok {
		return 0
	}
	return r.spec.TrainEpisodes - r.trained
}

// TrainEpisode runs the next single training episode with capture disabled.
func (r *RecordRun) TrainEpisode() (mechanism.EpisodeResult, error) {
	if r.headerDone {
		return mechanism.EpisodeResult{}, fmt.Errorf("scenario: training after recording started")
	}
	t, ok := r.m.(mechanism.Trainable)
	if !ok {
		return mechanism.EpisodeResult{}, fmt.Errorf("scenario: %s is not trainable", r.m.Name())
	}
	res, err := t.Train(1, nil)
	if err != nil {
		return mechanism.EpisodeResult{}, fmt.Errorf("scenario: train %s: %w", r.m.Name(), err)
	}
	r.trained++
	return res[0], nil
}

// writeHeader emits the versioned trace header: the spec and the
// mechanism's post-training checkpoint. Called once, lazily, before the
// first recorded episode.
func (r *RecordRun) writeHeader() error {
	header := trace.HeaderRecord{
		Mechanism:    r.kind.String(),
		Budget:       r.budget,
		Seed:         r.spec.Seed,
		Nodes:        r.spec.NumNodes(),
		EvalEpisodes: r.spec.EvalEpisodes,
	}
	var err error
	if header.Scenario, err = json.Marshal(r.spec); err != nil {
		return fmt.Errorf("scenario: marshal spec: %w", err)
	}
	if cp, ok := r.m.(mechanism.Checkpointer); ok {
		if header.Checkpoint, err = saveCheckpointBytes(cp); err != nil {
			return err
		}
	}
	if err := r.tw.WriteHeader(header); err != nil {
		return err
	}
	r.headerDone = true
	return nil
}

// RecordEpisode plays evaluation episode ep (1-based, in order) with draw
// capture armed and streams its draws, round records, and summary to the
// trace. Before the episode the accuracy RNG is reseeded from
// evalSeed(seed, ep), making each episode's measurement-noise stream
// independently reproducible: the exact discipline Replay repeats.
func (r *RecordRun) RecordEpisode(ep int) (mechanism.EpisodeResult, error) {
	if !r.headerDone {
		if r.TrainRemaining() > 0 {
			return mechanism.EpisodeResult{}, fmt.Errorf("scenario: recording with %d training episodes owed", r.TrainRemaining())
		}
		if err := r.writeHeader(); err != nil {
			return mechanism.EpisodeResult{}, err
		}
	}
	if want := len(r.out.Episodes) + 1; ep != want {
		return mechanism.EpisodeResult{}, fmt.Errorf("scenario: record episode %d out of order (want %d)", ep, want)
	}
	r.accRng.Seed(evalSeed(r.spec.Seed, ep))
	r.rec.begin(ep)
	res, err := r.m.RunEpisode(false)
	if err != nil {
		return mechanism.EpisodeResult{}, fmt.Errorf("scenario: record episode %d: %w", ep, err)
	}
	res.Episode = ep
	for _, d := range r.rec.recs {
		if err := r.tw.WriteDraws(d); err != nil {
			return mechanism.EpisodeResult{}, err
		}
	}
	rounds := r.env.Ledger().Rounds()
	for i := range rounds {
		if err := r.tw.WriteRound(ep, &rounds[i]); err != nil {
			return mechanism.EpisodeResult{}, err
		}
		r.out.Rounds = append(r.out.Rounds, trace.NewRoundRecord(ep, &rounds[i]))
	}
	if err := r.tw.WriteEpisode(res); err != nil {
		return mechanism.EpisodeResult{}, err
	}
	r.out.Episodes = append(r.out.Episodes, res)
	return res, nil
}

// Finish disarms the recorder, flushes the trace, and returns the recorded
// episode set.
func (r *RecordRun) Finish() (*EpisodeSet, error) {
	r.rec.enabled = false
	if err := r.tw.Flush(); err != nil {
		return nil, err
	}
	return r.out, nil
}

// Record runs one (mechanism, budget) cell of the scenario with the round
// pipeline's draw capture enabled and streams a replayable trace to tw:
// a versioned header embedding the spec and the mechanism's post-training
// checkpoint, then — per evaluation episode — every round's environment
// draws, the committed round records, and the episode summary.
//
// mech selects the recorded mechanism ("" = the spec's first); budget
// selects the cell (0 = the spec's first). Training episodes run with
// capture disabled — only the deterministic evaluation is recorded. Record
// is the batch form of the StartRecord step API above, which hosted
// sessions drive episode by episode.
func Record(s *Spec, mech string, budget float64, tw *trace.Writer) (*EpisodeSet, error) {
	run, err := StartRecord(s, mech, budget, tw)
	if err != nil {
		return nil, err
	}
	for run.TrainRemaining() > 0 {
		if _, err := run.TrainEpisode(); err != nil {
			return nil, err
		}
	}
	for ep := 1; ep <= run.Episodes(); ep++ {
		if _, err := run.RecordEpisode(ep); err != nil {
			return nil, err
		}
	}
	return run.Finish()
}
