package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"chiron/internal/experiment"
)

// validSpec returns a minimal well-formed spec the invalid cases mutate.
func validSpec() *Spec {
	return &Spec{
		Name:         "test",
		Dataset:      "mnist",
		Seed:         1,
		Classes:      []DeviceClass{{Profile: "paper", Count: 3}},
		Budgets:      []float64{100},
		Mechanisms:   []string{"uniform"},
		EvalEpisodes: 1,
	}
}

func TestValidateAcceptsLibrary(t *testing.T) {
	for _, name := range Names() {
		s, _ := Lookup(name)
		if err := s.Validate(); err != nil {
			t.Errorf("library scenario %s invalid: %v", name, err)
		}
	}
}

// TestValidateTable drives every malformed-spec class through Validate and
// checks both that it is rejected and that the typed sentinel (when one
// applies) survives wrapping, so callers can errors.Is-match failures.
func TestValidateTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   error // nil = any error
	}{
		{"no name", func(s *Spec) { s.Name = "" }, nil},
		{"unknown dataset", func(s *Spec) { s.Dataset = "imagenet" }, ErrUnknownDataset},
		{"no classes", func(s *Spec) { s.Classes = nil }, ErrEmptyFleet},
		{"zero-count classes", func(s *Spec) { s.Classes[0].Count = 0 }, nil},
		{"unknown profile", func(s *Spec) { s.Classes[0].Profile = "mainframe" }, ErrUnknownClass},
		{"negative class scale", func(s *Spec) { s.Classes[0].FreqScale = -1 }, nil},
		{"no budgets", func(s *Spec) { s.Budgets = nil }, ErrNegativeBudget},
		{"negative budget", func(s *Spec) { s.Budgets = []float64{100, -5} }, ErrNegativeBudget},
		{"zero budget", func(s *Spec) { s.Budgets = []float64{0} }, ErrNegativeBudget},
		{"no mechanisms", func(s *Spec) { s.Mechanisms = nil }, ErrUnknownMechanism},
		{"unknown mechanism", func(s *Spec) { s.Mechanisms = []string{"oracle-lp"} }, ErrUnknownMechanism},
		{"negative train episodes", func(s *Spec) { s.TrainEpisodes = -1 }, nil},
		{"zero eval episodes", func(s *Spec) { s.EvalEpisodes = 0 }, nil},
		{"negative lambda", func(s *Spec) { s.Lambda = -1 }, nil},
		{"negative non-iid", func(s *Spec) { s.NonIID = -0.5 }, nil},
		{"availability above one", func(s *Spec) { s.Availability = 1.5 }, nil},
		{"jitter at one", func(s *Spec) { s.CommJitter = 1 }, nil},
		{"quorum beyond fleet", func(s *Spec) { s.MinQuorum = 4 }, nil},
		{"failure payment above one", func(s *Spec) { s.FailurePayment = 2 }, nil},
		{"bandwidth round zero", func(s *Spec) {
			s.Bandwidth = []BandwidthPhase{{FromRound: 0, Factor: 2}}
		}, nil},
		{"bandwidth out of order", func(s *Spec) {
			s.Bandwidth = []BandwidthPhase{{FromRound: 5, Factor: 2}, {FromRound: 5, Factor: 1}}
		}, nil},
		{"bandwidth zero factor", func(s *Spec) {
			s.Bandwidth = []BandwidthPhase{{FromRound: 1, Factor: 0}}
		}, nil},
		{"churn script and rates", func(s *Spec) {
			s.Churn = &ChurnSpec{Script: "-0@2", Rates: &ChurnRatesSpec{Depart: 0.1}}
		}, nil},
		{"churn bad script", func(s *Spec) { s.Churn = &ChurnSpec{Script: "0@2"} }, nil},
		{"churn script unknown node", func(s *Spec) { s.Churn = &ChurnSpec{Script: "-9@2"} }, nil},
		{"churn rates out of range", func(s *Spec) {
			s.Churn = &ChurnSpec{Rates: &ChurnRatesSpec{Depart: 1.5}}
		}, nil},
		{"churn window unknown node", func(s *Spec) {
			s.Churn = &ChurnSpec{Windows: []ChurnWindow{{Node: 7, From: 2, To: 4}}}
		}, nil},
		{"churn window inverted", func(s *Spec) {
			s.Churn = &ChurnSpec{Windows: []ChurnWindow{{Node: 0, From: 5, To: 2}}}
		}, nil},
		{"churn window bad kind", func(s *Spec) {
			s.Churn = &ChurnSpec{Windows: []ChurnWindow{{Node: 0, From: 2, To: 4, Kind: "vacation"}}}
		}, nil},
		{"overlapping churn windows", func(s *Spec) {
			s.Churn = &ChurnSpec{Windows: []ChurnWindow{
				{Node: 0, From: 2, To: 6},
				{Node: 0, From: 5, To: 9},
			}}
		}, ErrChurnOverlap},
		{"adjacent churn windows collide", func(s *Spec) {
			// The first away window's re-arrival lands at round 7; a second
			// departure that same round is a conflict.
			s.Churn = &ChurnSpec{Windows: []ChurnWindow{
				{Node: 0, From: 2, To: 6},
				{Node: 0, From: 7, To: 9},
			}}
		}, ErrChurnOverlap},
		{"mixed visit and away windows", func(s *Spec) {
			s.Churn = &ChurnSpec{Windows: []ChurnWindow{
				{Node: 0, From: 2, To: 4, Kind: "visit"},
				{Node: 0, From: 8, To: 9},
			}}
		}, ErrChurnOverlap},
		{"window collides with script", func(s *Spec) {
			s.Churn = &ChurnSpec{
				Script:  "-0@3",
				Windows: []ChurnWindow{{Node: 0, From: 3, To: 5}},
			}
		}, ErrChurnOverlap},
		{"fault rates above one", func(s *Spec) {
			s.Faults = &FaultSpec{Crash: 0.8, Straggle: 0.8}
		}, nil},
		{"bad straggle factor", func(s *Spec) {
			s.Faults = &FaultSpec{Straggle: 0.1, StraggleFactor: 1.1}
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("error %v does not wrap %v", err, tc.want)
			}
		})
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","dataset":"mnist","clases":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("typo'd field error = %v", err)
	}
}

func TestParseRejectsTrailingData(t *testing.T) {
	data, _ := json.Marshal(validSpec())
	if _, err := Parse(append(data, []byte("{}")...)); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, _ := Lookup("faulty-fleet")
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if back.Name != s.Name || back.Faults == nil || back.Faults.Straggle != s.Faults.Straggle {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestMechanismKindVocabulary(t *testing.T) {
	cases := map[string]experiment.MechanismKind{
		"chiron":           experiment.KindChiron,
		"Chiron":           experiment.KindChiron,
		"drl":              experiment.KindDRLBased,
		"DRL-based":        experiment.KindDRLBased,
		"greedy":           experiment.KindGreedy,
		"uniform":          experiment.KindUniform,
		"equal-time":       experiment.KindEqualTimeOracle,
		"EqualTime-Oracle": experiment.KindEqualTimeOracle,
	}
	for name, want := range cases {
		got, err := MechanismKind(name)
		if err != nil || got != want {
			t.Errorf("MechanismKind(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	// Every mechanism String() form must round-trip, so replay can always
	// resolve a recorded header.
	for _, k := range []experiment.MechanismKind{
		experiment.KindChiron, experiment.KindDRLBased, experiment.KindGreedy,
		experiment.KindUniform, experiment.KindEqualTimeOracle,
	} {
		got, err := MechanismKind(k.String())
		if err != nil || got != k {
			t.Errorf("MechanismKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
}

func TestScale(t *testing.T) {
	s, _ := Lookup("fig4-grid")
	scaled := s.Scale(0.01)
	if scaled.TrainEpisodes != 5 || scaled.EvalEpisodes != 1 {
		t.Errorf("Scale(0.01) train=%d eval=%d, want 5, 1", scaled.TrainEpisodes, scaled.EvalEpisodes)
	}
	if s.TrainEpisodes != 500 {
		t.Errorf("Scale mutated the original: train=%d", s.TrainEpisodes)
	}
}

func TestBandwidthPhaseSchedule(t *testing.T) {
	sched := phaseSchedule([]BandwidthPhase{{FromRound: 5, Factor: 2}, {FromRound: 12, Factor: 0.7}})
	for _, tc := range []struct {
		round int
		want  float64
	}{{1, 1}, {4, 1}, {5, 2}, {11, 2}, {12, 0.7}, {100, 0.7}} {
		if got := sched.Factor(tc.round); got != tc.want {
			t.Errorf("Factor(%d) = %v, want %v", tc.round, got, tc.want)
		}
	}
}

// FuzzScenarioParse feeds arbitrary bytes (seeded with every library
// scenario and a few malformed shapes) through Parse: it must never panic,
// and anything it accepts must survive a marshal → parse round trip.
func FuzzScenarioParse(f *testing.F) {
	for _, name := range Names() {
		s, _ := Lookup(name)
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatalf("marshal %s: %v", name, err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","dataset":"mnist","classes":[{"profile":"paper","count":-1}]}`))
	f.Add([]byte(`{"name":"x","budgets":[1e308,1e308]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not marshal: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted spec does not re-parse: %v\n%s", err, out)
		}
		if back.Name != s.Name || back.NumNodes() != s.NumNodes() {
			t.Fatalf("round trip drifted: %q/%d vs %q/%d", back.Name, back.NumNodes(), s.Name, s.NumNodes())
		}
	})
}
