package scenario

import (
	"fmt"
	"strings"

	"chiron/internal/experiment"
	"chiron/internal/mechanism"
	"chiron/internal/trace"
)

// ReplayOptions select what plays against the recorded environment draws.
// The zero value replays the recording as-is: same mechanism (restored from
// the embedded checkpoint), same budget, same episode count — which must
// reproduce the recorded results bit-for-bit.
type ReplayOptions struct {
	// Mechanism overrides the recorded mechanism ("" keeps it): the
	// counterfactual "same environment, different policy".
	Mechanism string
	// Budget overrides the recorded η (0 keeps it): "same environment,
	// different budget". With the recorded mechanism, the recorded policy
	// (checkpoint) plays under the new budget.
	Budget float64
	// Episodes overrides how many recorded episodes to replay (0 = all).
	Episodes int
}

// ReplayResult is a counterfactual ledger: what the selected mechanism and
// budget would have earned, spent, and trained against the recorded
// environment draws.
type ReplayResult struct {
	EpisodeSet
	// Counterfactual reports whether mechanism or budget differ from the
	// recording; when false the result must equal the recording exactly.
	Counterfactual bool
	// RecordedMechanism and RecordedBudget echo the trace header.
	RecordedMechanism string
	RecordedBudget    float64
}

// Summary renders the replay as readable per-episode lines plus the
// exact-bits digest line.
func (r *ReplayResult) Summary() string {
	var b strings.Builder
	verb := "replay"
	if r.Counterfactual {
		verb = "counterfactual"
	}
	fmt.Fprintf(&b, "%s %s: %s eta=%g (recorded %s eta=%g)\n",
		verb, r.Scenario, r.Mechanism, r.Budget, r.RecordedMechanism, r.RecordedBudget)
	for _, e := range r.Episodes {
		fmt.Fprintf(&b, "  ep %d: rounds=%-4d acc=%.6f extret=%.6g spend=%.6g teff=%.6f util=%.6g\n",
			e.Episode, e.Rounds, e.FinalAccuracy, e.ExteriorReturn,
			e.BudgetSpent, e.TimeEfficiency, e.ServerUtility)
	}
	fmt.Fprintf(&b, "digest %s\n", r.Digest())
	return b.String()
}

// Replay re-runs a recorded trace's evaluation episodes with the
// environment draws pinned to the tape: membership, availability, and
// bandwidth jitter are read back verbatim, so the only thing that changes
// is what the selected mechanism pays and recruits. With the recorded
// mechanism and budget this reproduces the recording bit-for-bit; with a
// different mechanism or budget it answers the counterfactual "what would
// that policy have achieved in this exact environment" without
// re-simulating the environment.
//
// Rounds past the end of the tape (a cheaper policy can stretch the budget
// further than the recording went) are extended deterministically from the
// spec — see the tape type.
func Replay(tr *trace.Trace, opts ReplayOptions) (*ReplayResult, error) {
	if tr.Header == nil {
		return nil, fmt.Errorf("scenario: trace has no header; only traces recorded via Record (chiron run -record) can be replayed")
	}
	h := tr.Header
	if len(h.Scenario) == 0 {
		return nil, fmt.Errorf("scenario: trace header embeds no scenario spec")
	}
	spec, err := Parse(h.Scenario)
	if err != nil {
		return nil, fmt.Errorf("scenario: embedded spec: %w", err)
	}
	recordedKind, err := MechanismKind(h.Mechanism)
	if err != nil {
		return nil, fmt.Errorf("scenario: trace header: %w", err)
	}
	kind := recordedKind
	if opts.Mechanism != "" {
		if kind, err = MechanismKind(opts.Mechanism); err != nil {
			return nil, err
		}
	}
	budget := h.Budget
	if opts.Budget > 0 {
		budget = opts.Budget
	}
	episodes := h.EvalEpisodes
	if opts.Episodes > 0 {
		episodes = opts.Episodes
	}
	if episodes <= 0 {
		return nil, fmt.Errorf("scenario: replay of %d episodes", episodes)
	}
	sameMechanism := kind == recordedKind

	tape, err := newTape(tr, spec)
	if err != nil {
		return nil, err
	}
	env, accRng, err := spec.BuildEnv(budget, envHooks{draws: tape})
	if err != nil {
		return nil, err
	}
	tape.bindFleet(env.Fleet().CommTime)
	m, err := experiment.BuildMechanism(kind, env, spec.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario: mechanism: %w", err)
	}
	if sameMechanism {
		// The recorded policy plays again — restored from the embedded
		// checkpoint even under a budget override, so the counterfactual is
		// "this trained policy, different purse", not a retrained one.
		if len(h.Checkpoint) > 0 {
			cp, ok := m.(mechanism.Checkpointer)
			if !ok {
				return nil, fmt.Errorf("scenario: trace carries a checkpoint but %s cannot load one", m.Name())
			}
			if err := loadCheckpointBytes(cp, h.Checkpoint); err != nil {
				return nil, err
			}
		}
	} else if _, trainable := m.(mechanism.Trainable); trainable && spec.TrainEpisodes > 0 {
		// A counterfactual learner trains from scratch on a plain
		// environment at the replay budget (its own fresh draws — training
		// must not consume the tape), then its weights transfer onto the
		// taped environment through a checkpoint.
		trainEnv, _, err := spec.BuildEnv(budget, envHooks{})
		if err != nil {
			return nil, err
		}
		mt, err := experiment.BuildMechanism(kind, trainEnv, spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("scenario: mechanism: %w", err)
		}
		if _, err := mt.(mechanism.Trainable).Train(spec.TrainEpisodes, nil); err != nil {
			return nil, fmt.Errorf("scenario: train %s: %w", mt.Name(), err)
		}
		blob, err := saveCheckpointBytes(mt.(mechanism.Checkpointer))
		if err != nil {
			return nil, err
		}
		if err := loadCheckpointBytes(m.(mechanism.Checkpointer), blob); err != nil {
			return nil, err
		}
	}

	out := &ReplayResult{
		EpisodeSet:        EpisodeSet{Scenario: spec.Name, Mechanism: kind.String(), Budget: budget},
		Counterfactual:    !sameMechanism || budget != h.Budget,
		RecordedMechanism: h.Mechanism,
		RecordedBudget:    h.Budget,
	}
	for ep := 1; ep <= episodes; ep++ {
		accRng.Seed(evalSeed(spec.Seed, ep))
		tape.setEpisode(ep)
		res, err := m.RunEpisode(false)
		if err != nil {
			return nil, fmt.Errorf("scenario: replay episode %d: %w", ep, err)
		}
		res.Episode = ep
		rounds := env.Ledger().Rounds()
		for i := range rounds {
			out.Rounds = append(out.Rounds, trace.NewRoundRecord(ep, &rounds[i]))
		}
		out.Episodes = append(out.Episodes, res)
	}
	return out, nil
}
