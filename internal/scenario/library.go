package scenario

import "sort"

// library holds the named scenarios that double as the cross-scenario
// conformance corpus: each exercises a different slice of the environment
// model (device mixes, price regimes, bandwidth phases, churn, faults,
// non-IID data), and each is cheap enough — except fig4-grid, which the
// conformance suite runs scaled down — for the golden-digest suite to run
// them all under -race in CI.
var library = []Spec{
	{
		Name:         "paper-baseline",
		Description:  "the paper's clean Sec. VI-A setting: IID MNIST, fixed fleet, no failures",
		Dataset:      "mnist",
		Seed:         7,
		Classes:      []DeviceClass{{Profile: "paper", Count: 4}},
		Budgets:      []float64{300},
		Mechanisms:   []string{"uniform"},
		EvalEpisodes: 3,
	},
	{
		Name:         "budget-pacing",
		Description:  "budget sweep on Fashion-MNIST: how round counts and accuracy pace with eta",
		Dataset:      "fashion",
		Seed:         11,
		Classes:      []DeviceClass{{Profile: "paper", Count: 4}},
		Budgets:      []float64{150, 300, 600},
		Mechanisms:   []string{"uniform", "equal-time"},
		EvalEpisodes: 3,
	},
	{
		Name:        "flash-crowd",
		Description: "two phones visit the fleet for rounds 3-8 only; recruitment must adapt",
		Dataset:     "mnist",
		Seed:        13,
		Classes: []DeviceClass{
			{Profile: "paper", Count: 3},
			{Profile: "phone", Count: 2},
		},
		Budgets:    []float64{400},
		Mechanisms: []string{"greedy"},
		Churn: &ChurnSpec{Windows: []ChurnWindow{
			{Node: 3, From: 3, To: 8, Kind: "visit"},
			{Node: 4, From: 3, To: 8, Kind: "visit"},
		}},
		TrainEpisodes: 6,
		EvalEpisodes:  3,
	},
	{
		Name:        "adversarial-price",
		Description: "expensive reserves on CIFAR: IoT swarm plus one server with doubled reserve utility",
		Dataset:     "cifar",
		Seed:        17,
		Classes: []DeviceClass{
			{Profile: "iot", Count: 3, ReserveScale: 2},
			{Profile: "server", Count: 1, ReserveScale: 2},
		},
		Budgets:      []float64{250},
		Mechanisms:   []string{"uniform"},
		EvalEpisodes: 3,
	},
	{
		Name:         "flaky-network",
		Description:  "80% availability with 20% bandwidth jitter: the stochastic-draw regime",
		Dataset:      "mnist",
		Seed:         19,
		Classes:      []DeviceClass{{Profile: "paper", Count: 4}},
		Budgets:      []float64{300},
		Mechanisms:   []string{"uniform"},
		Availability: 0.8,
		CommJitter:   0.2,
		EvalEpisodes: 3,
	},
	{
		Name:        "congested-uplink",
		Description: "piecewise bandwidth regime: uplinks halve at round 5, recover past nominal at round 12",
		Dataset:     "fashion",
		Seed:        23,
		Classes:     []DeviceClass{{Profile: "paper", Count: 4}},
		Budgets:     []float64{350},
		Mechanisms:  []string{"equal-time"},
		Bandwidth: []BandwidthPhase{
			{FromRound: 5, Factor: 2.0},
			{FromRound: 12, Factor: 0.7},
		},
		EvalEpisodes: 3,
	},
	{
		Name:        "faulty-fleet",
		Description: "sampled crash/straggle/drop/corrupt faults under a 60s deadline with half failure payment",
		Dataset:     "mnist",
		Seed:        29,
		Classes:     []DeviceClass{{Profile: "paper", Count: 5}},
		Budgets:     []float64{300},
		Mechanisms:  []string{"uniform"},
		Faults: &FaultSpec{
			Crash:    0.05,
			Straggle: 0.10,
			Drop:     0.05,
			Corrupt:  0.02,
		},
		RoundDeadline:  60,
		FailurePayment: 0.5,
		EvalEpisodes:   3,
	},
	{
		Name:        "churny-fleet",
		Description: "Markov churn (10% depart, 30% re-arrive) over a flaky network",
		Dataset:     "mnist",
		Seed:        37,
		Classes:     []DeviceClass{{Profile: "paper", Count: 5}},
		Budgets:     []float64{300},
		Mechanisms:  []string{"uniform"},
		Churn: &ChurnSpec{Rates: &ChurnRatesSpec{
			Depart: 0.10,
			Arrive: 0.30,
		}},
		Availability: 0.9,
		CommJitter:   0.1,
		EvalEpisodes: 3,
	},
	{
		Name:        "heterogeneous-mix",
		Description: "four device tiers on non-IID shards (severity 0.5): the Table I fleet in miniature",
		Dataset:     "mnist-large",
		Seed:        31,
		Classes: []DeviceClass{
			{Profile: "phone", Count: 2},
			{Profile: "laptop", Count: 2},
			{Profile: "iot", Count: 1},
			{Profile: "server", Count: 1},
		},
		Budgets:       []float64{300},
		Mechanisms:    []string{"uniform", "greedy"},
		NonIID:        0.5,
		TrainEpisodes: 4,
		EvalEpisodes:  3,
	},
	{
		Name:          "fig4-grid",
		Description:   "the paper's Fig. 4 grid as a scenario: MNIST budget sweep, Chiron vs DRL-based vs Greedy (run scaled for CI)",
		Dataset:       "mnist",
		Seed:          7,
		Classes:       []DeviceClass{{Profile: "paper", Count: 5}},
		Budgets:       []float64{100, 200, 300, 400, 500},
		Mechanisms:    []string{"chiron", "drl", "greedy"},
		TrainEpisodes: 500,
		EvalEpisodes:  5,
	},
}

// Names returns the library scenario names, sorted.
func Names() []string {
	names := make([]string, len(library))
	for i := range library {
		names[i] = library[i].Name
	}
	sort.Strings(names)
	return names
}

// Lookup returns a fresh copy of the named library scenario. Copies are
// shallow but callers only ever override scalar fields (Scale), so the
// shared slices stay untouched.
func Lookup(name string) (*Spec, bool) {
	for i := range library {
		if library[i].Name == name {
			s := library[i]
			return &s, true
		}
	}
	return nil, false
}

// Describe returns the name and description of every library scenario in
// sorted order, for `chiron list`.
func Describe() [][2]string {
	out := make([][2]string, 0, len(library))
	for _, name := range Names() {
		s, _ := Lookup(name)
		out = append(out, [2]string{s.Name, s.Description})
	}
	return out
}
