// Package supervise wraps a learnable mechanism's training loop in the
// crash-recovery machinery a long-lived incentive server needs: periodic
// auto-checkpointing (atomic write-temp-then-rename through
// rl.SaveCheckpoint), a bounded restart policy driven by the unified
// faults.Backoff type, and recovery that reloads the newest valid
// checkpoint — falling back past corrupt or truncated files via the
// rl.ErrCorruptCheckpoint / trace.ErrTruncated error paths — and resumes
// with CountingSource RNG accounting intact.
//
// The recovery contract is exact resume: because every learnable mechanism
// serializes its complete training state (weights, optimizer moments,
// carried rollout buffers, RNG draw counts, episode counter) into the
// unified rl.Checkpoint, a run killed at any point and recovered through
// the supervisor finishes in exactly the state the uninterrupted run
// reaches — the property internal/propcheck's chaos harness asserts
// byte-for-byte. The one caveat is inherited from the checkpoint format:
// environment-side RNG (comm jitter, availability) is not checkpointed, so
// exact resume holds for deterministic environments (the default).
package supervise

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"chiron/internal/faults"
	"chiron/internal/mechanism"
	"chiron/internal/rl"
	"chiron/internal/trace"
)

// Target is what the supervisor drives: a mechanism that can train and
// checkpoint (Chiron, DRL-based, Greedy — the static baselines have no
// state worth supervising).
type Target interface {
	mechanism.Trainable
	mechanism.Checkpointer
}

// Factory builds a fresh Target positioned at episode zero. The supervisor
// calls it once per recovery attempt — never reusing a target across
// restore attempts, because a restore that fails midway (a corrupt file
// whose shape pins parse but whose payload does not apply cleanly) may
// leave the target partially mutated.
type Factory func() (Target, error)

// Config parameterizes a Runner.
type Config struct {
	// Dir is the checkpoint directory (required; created if missing).
	Dir string
	// Every is the auto-checkpoint period in episodes (default 1).
	Every int
	// Keep bounds how many checkpoints are retained, oldest pruned first
	// (default 3). Keeping more than one is what makes corrupt-fallback
	// recovery possible at all.
	Keep int
	// Retry is the restart policy after a training crash: MaxRetries
	// bounds restarts across one Run, Base/Factor/Max shape the pause
	// before each. The zero value never restarts.
	Retry faults.Backoff
	// Sleep overrides how the restart pause is served (nil = time.Sleep);
	// tests inject a recorder here.
	Sleep func(time.Duration)
	// Gate, when set, is consulted before every training chunk. It may
	// block (a hosted session parks here while paused); a returned error
	// stops the run early — Run flushes a final checkpoint of the live
	// target and returns the gate's error verbatim, so callers can
	// distinguish a requested stop (errors.Is on their sentinel) from a
	// training failure.
	Gate func() error
}

// Report summarizes what one Run survived.
type Report struct {
	// Episodes holds the per-episode results of the final successful
	// lineage: exactly one entry per episode trained after the initial
	// recovery point, with episodes lost to a crash (trained but not yet
	// checkpointed) excluded. The caller's callback, in contrast, sees
	// every attempt, including episodes later replayed after a restart.
	Episodes []mechanism.EpisodeResult
	// ResumedFrom is the episode count restored at start (0 = fresh run).
	ResumedFrom int
	// Restarts counts crash recoveries performed during the Run.
	Restarts int
	// Checkpoints counts successful checkpoint saves.
	Checkpoints int
	// CorruptSkipped counts unusable checkpoint files skipped during
	// recoveries (corrupt, truncated, or shape-mismatched).
	CorruptSkipped int
}

// Runner supervises one mechanism's training. It is not safe for
// concurrent use.
type Runner struct {
	factory Factory
	cfg     Config
}

// New validates cfg and builds a Runner over factory.
func New(factory Factory, cfg Config) (*Runner, error) {
	if factory == nil {
		return nil, fmt.Errorf("supervise: nil factory")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("supervise: no checkpoint directory")
	}
	if cfg.Every < 0 {
		return nil, fmt.Errorf("supervise: checkpoint period %d, want >= 0", cfg.Every)
	}
	if cfg.Keep < 0 {
		return nil, fmt.Errorf("supervise: keep %d, want >= 0", cfg.Keep)
	}
	if err := cfg.Retry.Validate(); err != nil {
		return nil, fmt.Errorf("supervise: %w", err)
	}
	if cfg.Every == 0 {
		cfg.Every = 1
	}
	if cfg.Keep == 0 {
		cfg.Keep = 3
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("supervise: checkpoint directory: %w", err)
	}
	return &Runner{factory: factory, cfg: cfg}, nil
}

// checkpointPath names the checkpoint saved after episode n. The fixed
// width keeps lexical and numeric order identical.
func (r *Runner) checkpointPath(episode int) string {
	return filepath.Join(r.cfg.Dir, fmt.Sprintf("ckpt-%08d.json", episode))
}

// Checkpoints lists the directory's checkpoint files newest-first.
func (r *Runner) Checkpoints() ([]string, error) {
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("supervise: list checkpoints: %w", err)
	}
	var names []string
	for _, e := range entries {
		// Foreign files — editor temps, half-written .tmp leftovers,
		// unpadded lookalikes, or a directory that happens to match the
		// pattern — must never become recovery candidates: a junk
		// "checkpoint" would abort recovery with an unrecoverable read
		// error instead of falling back to the real newest file.
		if e.IsDir() {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%08d.json", &n); err == nil &&
			e.Name() == fmt.Sprintf("ckpt-%08d.json", n) {
			names = append(names, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(r.cfg.Dir, n)
	}
	return paths, nil
}

// recoverable reports whether a failed checkpoint load should fall back to
// an older file rather than abort recovery: corrupt JSON, a torn tail, or
// a shape pin that does not match the freshly built target (a stale file
// from a different configuration).
func recoverable(err error) bool {
	return errors.Is(err, rl.ErrCorruptCheckpoint) || errors.Is(err, trace.ErrTruncated) ||
		errors.Is(err, rl.ErrShapeMismatch)
}

// Recover builds a fresh target restored from the newest valid checkpoint
// in the directory. Unusable files are skipped oldest-ward; with no usable
// checkpoint at all the target starts fresh at episode zero. skipped
// counts the files passed over.
func (r *Runner) Recover() (t Target, skipped int, err error) {
	paths, err := r.Checkpoints()
	if err != nil {
		return nil, 0, err
	}
	for _, path := range paths {
		t, err := r.factory()
		if err != nil {
			return nil, skipped, fmt.Errorf("supervise: build target: %w", err)
		}
		loadErr := t.LoadCheckpoint(path)
		if loadErr == nil {
			return t, skipped, nil
		}
		if !recoverable(loadErr) {
			return nil, skipped, fmt.Errorf("supervise: load %s: %w", path, loadErr)
		}
		skipped++
	}
	t, err = r.factory()
	if err != nil {
		return nil, skipped, fmt.Errorf("supervise: build target: %w", err)
	}
	return t, skipped, nil
}

// Run supervises training until the target has completed total episodes:
// recover (or start fresh), train in checkpoint-period chunks, save after
// each chunk, and on a training error restart from the latest valid
// checkpoint under the Retry policy. It returns the final target alongside
// the Report; on a terminal error (restart budget exhausted, checkpoint
// save failure) the partial report accompanies the error.
func (r *Runner) Run(total int, callback func(mechanism.EpisodeResult)) (Target, *Report, error) {
	if total <= 0 {
		return nil, nil, fmt.Errorf("supervise: run %d episodes, want > 0", total)
	}
	report := &Report{}
	target, skipped, err := r.Recover()
	if err != nil {
		return nil, report, err
	}
	report.CorruptSkipped += skipped
	report.ResumedFrom = target.Episode()

	restarts := 0
	for {
		done := target.Episode()
		if done >= total {
			return target, report, nil
		}
		if r.cfg.Gate != nil {
			if gateErr := r.cfg.Gate(); gateErr != nil {
				// Requested stop: flush the live target's state so a later
				// run resumes from exactly here, then surface the gate's
				// error unwrapped for the caller's sentinel check.
				if err := r.Save(target); err != nil {
					return target, report, err
				}
				report.Checkpoints++
				return target, report, gateErr
			}
		}
		chunk := r.cfg.Every
		if done+chunk > total {
			chunk = total - done
		}
		results, trainErr := target.Train(chunk, callback)
		if trainErr != nil {
			// Crash: the chunk's partial episodes are lost (their learner
			// state was never checkpointed); restart from the latest valid
			// checkpoint if the retry budget allows.
			if restarts >= r.cfg.Retry.MaxRetries {
				return target, report, fmt.Errorf("supervise: restart budget (%d) exhausted: %w",
					r.cfg.Retry.MaxRetries, trainErr)
			}
			restarts++
			report.Restarts++
			if d := r.cfg.Retry.Delay(restarts); d > 0 {
				r.cfg.Sleep(time.Duration(d * float64(time.Second)))
			}
			target, skipped, err = r.Recover()
			if err != nil {
				return nil, report, err
			}
			report.CorruptSkipped += skipped
			// Episodes re-run after the restart are re-appended by the
			// loop; drop any beyond the recovered episode count so the
			// report's lineage stays duplicate-free.
			if n := target.Episode() - report.ResumedFrom; n >= 0 && n < len(report.Episodes) {
				report.Episodes = report.Episodes[:n]
			}
			continue
		}
		report.Episodes = append(report.Episodes, results...)
		if err := r.Save(target); err != nil {
			return target, report, err
		}
		report.Checkpoints++
	}
}

// Save checkpoints the target's current state at its episode counter
// (atomic write-temp-then-rename via SaveCheckpoint) and prunes past the
// Keep bound. Run calls it after every chunk; graceful-shutdown paths call
// it directly to flush a final checkpoint before exiting.
func (r *Runner) Save(t Target) error {
	if err := t.SaveCheckpoint(r.checkpointPath(t.Episode())); err != nil {
		return fmt.Errorf("supervise: checkpoint: %w", err)
	}
	return r.prune()
}

// prune deletes the oldest checkpoints past the Keep bound.
func (r *Runner) prune() error {
	paths, err := r.Checkpoints()
	if err != nil {
		return err
	}
	for _, path := range paths[min(len(paths), r.cfg.Keep):] {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("supervise: prune %s: %w", path, err)
		}
	}
	return nil
}
