package supervise

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chiron/internal/faults"
	"chiron/internal/mechanism"
	"chiron/internal/rl"
)

// crashPlan scripts training failures shared across the factory's fresh
// targets: failures[n] counts how many times training episode n crashes
// before succeeding. It lives outside the target, mirroring how a real
// crash kills the process but not the fault that caused it.
type crashPlan struct {
	failures map[int]int
}

// fakeTarget is a minimal supervise.Target: its whole training state is the
// episode counter, checkpointed through the unified rl.Checkpoint format so
// the corrupt/shape-mismatch error paths are the real ones.
type fakeTarget struct {
	episode int
	plan    *crashPlan
}

func (f *fakeTarget) Episode() int { return f.episode }

func (f *fakeTarget) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	var out []mechanism.EpisodeResult
	for i := 0; i < episodes; i++ {
		next := f.episode + 1
		if f.plan != nil && f.plan.failures[next] > 0 {
			f.plan.failures[next]--
			return out, fmt.Errorf("fake: crash training episode %d", next)
		}
		f.episode = next
		res := mechanism.EpisodeResult{Episode: next, Rounds: next}
		if callback != nil {
			callback(res)
		}
		out = append(out, res)
	}
	return out, nil
}

func (f *fakeTarget) SaveCheckpoint(path string) error {
	return rl.SaveCheckpoint(path, &rl.Checkpoint{Mechanism: "fake", Nodes: 1, Episode: f.episode})
}

func (f *fakeTarget) LoadCheckpoint(path string) error {
	ck, err := rl.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	if ck.Mechanism != "fake" {
		return fmt.Errorf("%w: checkpoint for mechanism %q, want \"fake\"", rl.ErrShapeMismatch, ck.Mechanism)
	}
	f.episode = ck.Episode
	return nil
}

func fakeFactory(plan *crashPlan) Factory {
	return func() (Target, error) {
		return &fakeTarget{plan: plan}, nil
	}
}

func TestNewValidation(t *testing.T) {
	dir := t.TempDir()
	ok := fakeFactory(nil)
	cases := []struct {
		name    string
		factory Factory
		cfg     Config
	}{
		{"nil factory", nil, Config{Dir: dir}},
		{"no dir", ok, Config{}},
		{"negative every", ok, Config{Dir: dir, Every: -1}},
		{"negative keep", ok, Config{Dir: dir, Keep: -2}},
		{"bad retry", ok, Config{Dir: dir, Retry: faults.Backoff{Base: -1}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.factory, tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
	if _, err := New(ok, Config{Dir: filepath.Join(dir, "sub")}); err != nil {
		t.Fatalf("New with fresh subdirectory: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "sub")); err != nil {
		t.Fatalf("New did not create checkpoint directory: %v", err)
	}
}

func TestRecoverFresh(t *testing.T) {
	r, err := New(fakeFactory(nil), Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	target, skipped, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || target.Episode() != 0 {
		t.Fatalf("fresh recover: skipped %d, episode %d, want 0, 0", skipped, target.Episode())
	}
}

func TestRecoverSkipsCorruptAndMismatched(t *testing.T) {
	dir := t.TempDir()
	r, err := New(fakeFactory(nil), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// A valid checkpoint at episode 2, then two newer unusable files: a
	// shape-mismatched checkpoint (different mechanism tag) and a torn
	// JSON tail. Recovery must fall back past both.
	good := &fakeTarget{episode: 2}
	if err := good.SaveCheckpoint(r.checkpointPath(2)); err != nil {
		t.Fatal(err)
	}
	if err := rl.SaveCheckpoint(r.checkpointPath(4), &rl.Checkpoint{Mechanism: "other", Episode: 4}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(r.checkpointPath(6), []byte(`{"mechanism":"fake","epis`), 0o644); err != nil {
		t.Fatal(err)
	}

	target, skipped, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped %d unusable checkpoints, want 2", skipped)
	}
	if target.Episode() != 2 {
		t.Errorf("recovered at episode %d, want 2", target.Episode())
	}
}

func TestRecoverAllCorruptStartsFresh(t *testing.T) {
	dir := t.TempDir()
	r, err := New(fakeFactory(nil), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2} {
		if err := os.WriteFile(r.checkpointPath(n), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	target, skipped, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 || target.Episode() != 0 {
		t.Fatalf("skipped %d, episode %d, want 2, 0", skipped, target.Episode())
	}
}

func TestCheckpointsIgnoreForeignEntries(t *testing.T) {
	dir := t.TempDir()
	r, err := New(fakeFactory(nil), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// A directory squatting on a checkpoint name, a half-written temp, an
	// unpadded lookalike, and plain junk must all be invisible: none is a
	// recovery candidate, and none may abort recovery of the real file.
	if err := os.Mkdir(r.checkpointPath(9), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"ckpt-00000005.json.tmp", "ckpt-123.json", "README.md", "ckpt-.json"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f := &fakeTarget{episode: 4}
	if err := f.SaveCheckpoint(r.checkpointPath(4)); err != nil {
		t.Fatal(err)
	}
	paths, err := r.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != r.checkpointPath(4) {
		t.Fatalf("Checkpoints() = %v, want only %s", paths, r.checkpointPath(4))
	}
	target, skipped, err := r.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || target.Episode() != 4 {
		t.Fatalf("skipped %d, episode %d, want 0, 4", skipped, target.Episode())
	}
}

func TestRunChunkedCheckpointing(t *testing.T) {
	dir := t.TempDir()
	r, err := New(fakeFactory(nil), Config{Dir: dir, Every: 2, Keep: 2})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	target, report, err := r.Run(5, func(res mechanism.EpisodeResult) { seen = append(seen, res.Episode) })
	if err != nil {
		t.Fatal(err)
	}
	if target.Episode() != 5 {
		t.Errorf("final episode %d, want 5", target.Episode())
	}
	// Chunks of 2 with a short tail: checkpoints after episodes 2, 4, 5.
	if report.Checkpoints != 3 {
		t.Errorf("checkpoints %d, want 3", report.Checkpoints)
	}
	if report.ResumedFrom != 0 || report.Restarts != 0 || report.CorruptSkipped != 0 {
		t.Errorf("unexpected report %+v for a clean run", report)
	}
	if len(report.Episodes) != 5 {
		t.Fatalf("report has %d episodes, want 5", len(report.Episodes))
	}
	for i, res := range report.Episodes {
		if res.Episode != i+1 {
			t.Errorf("report episode[%d] = %d, want %d", i, res.Episode, i+1)
		}
	}
	if len(seen) != 5 {
		t.Errorf("callback saw %d episodes, want 5", len(seen))
	}
	// Keep=2 prunes the episode-2 file, leaving the two newest.
	paths, err := r.Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || !strings.HasSuffix(paths[0], "ckpt-00000005.json") || !strings.HasSuffix(paths[1], "ckpt-00000004.json") {
		t.Errorf("retained checkpoints %v, want newest two (5, 4)", paths)
	}
}

func TestRunResumesFromExistingCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r, err := New(fakeFactory(nil), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	prior := &fakeTarget{episode: 3}
	if err := prior.SaveCheckpoint(r.checkpointPath(3)); err != nil {
		t.Fatal(err)
	}
	target, report, err := r.Run(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.ResumedFrom != 3 {
		t.Errorf("resumed from %d, want 3", report.ResumedFrom)
	}
	if target.Episode() != 5 || len(report.Episodes) != 2 {
		t.Errorf("episode %d with %d new results, want 5 with 2", target.Episode(), len(report.Episodes))
	}
}

func TestRunCrashRestartsWithBackoff(t *testing.T) {
	dir := t.TempDir()
	plan := &crashPlan{failures: map[int]int{3: 2}}
	var slept []time.Duration
	r, err := New(fakeFactory(plan), Config{
		Dir:   dir,
		Retry: faults.Backoff{Base: 2, Factor: 2, Max: 3, MaxRetries: 5},
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	target, report, err := r.Run(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if target.Episode() != 4 {
		t.Errorf("final episode %d, want 4", target.Episode())
	}
	if report.Restarts != 2 {
		t.Errorf("restarts %d, want 2", report.Restarts)
	}
	// Geometric pauses: Delay(1)=2s, Delay(2)=min(4,3)=3s.
	want := []time.Duration{2 * time.Second, 3 * time.Second}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("backoff pauses %v, want %v", slept, want)
	}
	// The lineage holds each episode exactly once despite the replays.
	if len(report.Episodes) != 4 {
		t.Fatalf("report has %d episodes, want 4", len(report.Episodes))
	}
	for i, res := range report.Episodes {
		if res.Episode != i+1 {
			t.Errorf("report episode[%d] = %d, want %d", i, res.Episode, i+1)
		}
	}
}

func TestRunRestartBudgetExhausted(t *testing.T) {
	dir := t.TempDir()
	plan := &crashPlan{failures: map[int]int{2: 100}}
	r, err := New(fakeFactory(plan), Config{
		Dir:   dir,
		Retry: faults.Backoff{MaxRetries: 3},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	target, report, err := r.Run(4, nil)
	if err == nil {
		t.Fatal("Run succeeded past an unrecoverable crash")
	}
	if report.Restarts != 3 {
		t.Errorf("restarts %d, want 3", report.Restarts)
	}
	// Episode 1 checkpointed before the crash loop; the final target sits
	// there, and its result is the whole surviving lineage.
	if target == nil || target.Episode() != 1 {
		t.Errorf("final target at episode %v, want 1", target)
	}
	if len(report.Episodes) != 1 || report.Episodes[0].Episode != 1 {
		t.Errorf("report lineage %+v, want exactly episode 1", report.Episodes)
	}
}

func TestRunZeroRetryNeverRestarts(t *testing.T) {
	plan := &crashPlan{failures: map[int]int{1: 1}}
	r, err := New(fakeFactory(plan), Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := r.Run(2, nil)
	if err == nil {
		t.Fatal("zero-value Retry restarted after a crash")
	}
	if report.Restarts != 0 {
		t.Errorf("restarts %d, want 0", report.Restarts)
	}
}

func TestRunLineageTruncatedOnDeepFallback(t *testing.T) {
	// Crash at episode 5 with the newest checkpoint (episode 4) corrupted
	// while the supervisor pauses: recovery falls back to episode 2 and the
	// report's lineage must shrink to match before episodes 3-5 replay.
	dir := t.TempDir()
	plan := &crashPlan{failures: map[int]int{5: 1}}
	var r *Runner
	cfg := Config{
		Dir:   dir,
		Every: 2,
		Keep:  3,
		// Base must be positive so the restart pause (where the corruption
		// hook rides) actually fires.
		Retry: faults.Backoff{Base: 0.5, MaxRetries: 2},
	}
	cfg.Sleep = func(time.Duration) {
		if err := os.WriteFile(r.checkpointPath(4), []byte("torn"), 0o644); err != nil {
			t.Errorf("corrupt newest checkpoint: %v", err)
		}
	}
	var err error
	r, err = New(fakeFactory(plan), cfg)
	if err != nil {
		t.Fatal(err)
	}
	target, report, err := r.Run(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if target.Episode() != 6 {
		t.Errorf("final episode %d, want 6", target.Episode())
	}
	if report.Restarts != 1 || report.CorruptSkipped != 1 {
		t.Errorf("restarts %d corrupt-skipped %d, want 1 and 1", report.Restarts, report.CorruptSkipped)
	}
	if len(report.Episodes) != 6 {
		t.Fatalf("report has %d episodes, want 6", len(report.Episodes))
	}
	for i, res := range report.Episodes {
		if res.Episode != i+1 {
			t.Errorf("report episode[%d] = %d, want %d", i, res.Episode, i+1)
		}
	}
}

func TestRunInvalidTotal(t *testing.T) {
	r, err := New(fakeFactory(nil), Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Run(0, nil); err == nil {
		t.Fatal("Run(0) accepted")
	}
}

func TestRecoverableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("wrap: %w", rl.ErrCorruptCheckpoint), true},
		{fmt.Errorf("wrap: %w", rl.ErrShapeMismatch), true},
		{errors.New("disk on fire"), false},
		{os.ErrPermission, false},
	}
	for _, tc := range cases {
		if got := recoverable(tc.err); got != tc.want {
			t.Errorf("recoverable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestRunGateStopFlushesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	stop := errors.New("stop requested")
	chunks := 0
	cfg := Config{Dir: dir, Every: 2, Gate: func() error {
		chunks++
		if chunks > 2 {
			return stop
		}
		return nil
	}}
	r, err := New(fakeFactory(nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	target, report, err := r.Run(10, nil)
	if !errors.Is(err, stop) {
		t.Fatalf("Run error = %v, want the gate sentinel", err)
	}
	// Two chunks of 2 ran before the gate tripped; the stop must have
	// flushed a final checkpoint at the live episode counter.
	if target.Episode() != 4 {
		t.Fatalf("stopped at episode %d, want 4", target.Episode())
	}
	if _, err := os.Stat(r.checkpointPath(4)); err != nil {
		t.Fatalf("final checkpoint not flushed: %v", err)
	}
	if report.Checkpoints != 3 {
		t.Errorf("report.Checkpoints = %d, want 3 (two chunk saves + stop flush)", report.Checkpoints)
	}

	// A fresh run resumes from exactly the flushed state.
	r2, err := New(fakeFactory(nil), Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	target2, report2, err := r2.Run(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report2.ResumedFrom != 4 || target2.Episode() != 10 {
		t.Errorf("resumed from %d to %d, want 4 to 10", report2.ResumedFrom, target2.Episode())
	}
}
