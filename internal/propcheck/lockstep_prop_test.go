package propcheck

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/core"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/mat"
	"chiron/internal/mechanism"
	"chiron/internal/nn"
	"chiron/internal/policy"
)

// lockstepEnv builds one deterministic evaluation environment from a seed
// tuple. Calling it twice with the same arguments yields bit-identical
// environments — the property below relies on that to hand the sequential
// and lockstep evaluators their own copies of the same world.
func lockstepEnv(t *testing.T, seed int64, nodes, maxRounds int, budget float64, faulted bool) *edgeenv.Env {
	t.Helper()
	fleet, err := device.NewFleet(rand.New(rand.NewSource(seed)), device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, budget)
	cfg.MaxRounds = maxRounds
	if faulted {
		sampler, err := faults.NewSampler(faults.Rates{Crash: 0.05, Straggle: 0.1, Drop: 0.05}, seed+2)
		if err != nil {
			t.Fatalf("NewSampler: %v", err)
		}
		cfg.Faults = sampler
		cfg.FailurePayment = 0.25
		cfg.RoundDeadline = 300
	}
	env, err := edgeenv.New(cfg)
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

// lockstepAgents builds a fresh agent per environment and, when a donor
// checkpoint is given, restores it into each — the frozen-checkpoint study
// setup the lockstep evaluator batches over.
func lockstepAgents(t *testing.T, envs []*edgeenv.Env, ck *core.Checkpoint, seed int64) []*core.Chiron {
	t.Helper()
	agents := make([]*core.Chiron, len(envs))
	for i, env := range envs {
		cfg := core.DefaultConfig()
		cfg.Exterior = smallPPO(cfg.Exterior)
		cfg.Inner = smallPPO(cfg.Inner)
		cfg.Seed = seed
		agent, err := core.New(env, cfg)
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		if ck != nil {
			if err := agent.Restore(ck); err != nil {
				t.Fatalf("Restore: %v", err)
			}
		}
		agents[i] = agent
	}
	return agents
}

// TestLockstepEvaluateBitIdentityProperty pins the batched frozen-policy
// evaluator to its sequential reference: over 200 randomized trials —
// varying fleet size, cell count, episode count, budget, horizon, and
// fault injection — core.EvaluateLockstep must return EpisodeResults
// bit-identical to mechanism.Evaluate run per agent. This is the float64
// acceptance property for the batched inference path: batching rows into
// one GEMM per policy per step may not move any metric by even one ULP.
func TestLockstepEvaluateBitIdentityProperty(t *testing.T) {
	t.Parallel()
	Trials(t, 71, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		seed := int64(trial)
		nodes := 3 + rng.Intn(2)
		cells := 2 + rng.Intn(3)
		episodes := 1 + rng.Intn(2)
		maxRounds := 5 + rng.Intn(5)
		budget := Uniform(rng, 40, 160)
		faulted := rng.Intn(2) == 0

		// Donor agent: fresh random weights are as good as trained ones for
		// an evaluator-equivalence property, and much cheaper 200 times.
		donor := lockstepAgents(t, []*edgeenv.Env{lockstepEnv(t, seed, nodes, maxRounds, budget, faulted)}, nil, seed)
		ck := donor[0].Checkpoint()

		build := func() ([]*edgeenv.Env, []*core.Chiron) {
			envs := make([]*edgeenv.Env, cells)
			for i := range envs {
				// Each cell gets its own perturbed world (different fleet and
				// budget draws), like an ablation grid row.
				envs[i] = lockstepEnv(t, seed+int64(i)*10, nodes, maxRounds, budget+float64(i)*5, faulted)
			}
			return envs, lockstepAgents(t, envs, ck, seed)
		}

		_, seqAgents := build()
		want := make([]mechanism.EpisodeResult, cells)
		for i, agent := range seqAgents {
			res, err := mechanism.Evaluate(agent, episodes)
			if err != nil {
				t.Fatalf("sequential Evaluate cell %d: %v", i, err)
			}
			want[i] = res
		}

		_, lockAgents := build()
		got, err := core.EvaluateLockstep(lockAgents, episodes)
		if err != nil {
			t.Fatalf("EvaluateLockstep: %v", err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cell %d: lockstep result diverges from sequential\n got %+v\nwant %+v", i, got[i], want[i])
			}
		}
	})
}

// TestLockstepFloat32PolicyToleranceProperty drives random frozen-policy
// episodes in float64 and, at every decision point, replays both policy
// forwards through their precision-lowered fused twins (nn.Fuse32) on the
// exact same states. Every float32 output must stay within
// mat.Float32Backend's stated tolerance of the float64 reference — the
// contract DESIGN.md §16 documents for the opt-in low-precision backend.
// States are harvested from the float64 trajectory, so the property
// measures per-forward rounding, not trajectory divergence.
func TestLockstepFloat32PolicyToleranceProperty(t *testing.T) {
	t.Parallel()
	backend := mat.Float32Backend
	Trials(t, 72, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		seed := int64(trial)
		nodes := 3 + rng.Intn(2)
		maxRounds := 5 + rng.Intn(5)
		env := lockstepEnv(t, seed, nodes, maxRounds, Uniform(rng, 40, 160), rng.Intn(2) == 0)
		agent := lockstepAgents(t, []*edgeenv.Env{env}, nil, seed)[0]

		fusedE, ok := nn.Fuse32(agent.Exterior().Policy().MeanNet())
		if !ok {
			t.Fatal("exterior policy does not fuse")
		}
		fusedI, ok := nn.Fuse32(agent.Inner().Policy().MeanNet())
		if !ok {
			t.Fatal("inner policy does not fuse")
		}
		encE, err := policy.NewExteriorEncoder(env)
		if err != nil {
			t.Fatalf("NewExteriorEncoder: %v", err)
		}
		encI := policy.NewConditioningEncoder(env)

		check := func(name string, fused *nn.FusedMLP32, state []float64, want []float64) {
			t.Helper()
			x := mat.New(1, len(state))
			copy(x.Row(0), state)
			x32, err := fused.Stage(x)
			if err != nil {
				t.Fatalf("%s Stage: %v", name, err)
			}
			y32, err := fused.Forward(x32)
			if err != nil {
				t.Fatalf("%s Forward: %v", name, err)
			}
			for j, w := range want {
				if got := float64(y32.At(0, j)); !backend.Within(got, w) {
					t.Fatalf("%s output %d: float32 %v vs float64 %v (diff %v) outside backend tolerance",
						name, j, got, w, math.Abs(got-w))
				}
			}
		}

		if err := env.Reset(); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		for !env.Done() {
			stateE := encE.State()
			meanE, err := agent.Exterior().ActDeterministic(stateE)
			if err != nil {
				t.Fatalf("exterior ActDeterministic: %v", err)
			}
			check("exterior", fusedE, stateE, meanE)

			prices, err := agent.Decide(false)
			if err != nil {
				t.Fatalf("Decide: %v", err)
			}
			var total float64
			for _, p := range prices {
				total += p
			}
			stateI := encI.State(total)
			meanI, err := agent.Inner().ActDeterministic(stateI)
			if err != nil {
				t.Fatalf("inner ActDeterministic: %v", err)
			}
			check("inner", fusedI, stateI, meanI)

			if _, err := env.Step(prices); err != nil {
				t.Fatalf("Step: %v", err)
			}
		}
	})
}
