package propcheck

import (
	"math"
	"testing"

	"chiron/internal/market"
)

// The checkers are the harness's trusted base, so they get their own
// negative tests: each law must reject a record that violates it.

func TestCheckSimplexRejectsViolations(t *testing.T) {
	cases := []struct {
		name  string
		props []float64
	}{
		{"empty", nil},
		{"negative entry", []float64{-0.1, 1.1}},
		{"sum above one", []float64{0.6, 0.6}},
		{"sum below one", []float64{0.2, 0.2}},
		{"nan entry", []float64{math.NaN(), 1}},
	}
	for _, tc := range cases {
		if err := CheckSimplex(tc.props); err == nil {
			t.Errorf("%s: CheckSimplex accepted %v", tc.name, tc.props)
		}
	}
	if err := CheckSimplex([]float64{0.25, 0.25, 0.5}); err != nil {
		t.Errorf("valid allocation rejected: %v", err)
	}
}

func TestCheckPriceDecompositionRejectsViolations(t *testing.T) {
	props := []float64{0.5, 0.5}
	if err := CheckPriceDecomposition(10, props, []float64{5, 4}); err == nil {
		t.Error("accepted price ≠ total·share")
	}
	if err := CheckPriceDecomposition(10, props, []float64{5}); err == nil {
		t.Error("accepted length mismatch")
	}
	if err := CheckPriceDecomposition(10, props, []float64{5, 5}); err != nil {
		t.Errorf("valid decomposition rejected: %v", err)
	}
}

func TestCheckRoundAccountingRejectsViolations(t *testing.T) {
	valid := func() market.Round {
		return market.Round{
			Prices:       []float64{1, 2, 3},
			Freqs:        []float64{4, 0, 5},
			Times:        []float64{6, 0, 7},
			Outcomes:     []market.Outcome{market.OutcomeCompleted, market.OutcomeAbsent, market.OutcomeCrashed},
			Payment:      1*4 + 0.5*3*5,
			Participants: 2,
			Completed:    1,
		}
	}
	if err := CheckRoundAccounting(&market.Round{}, 0); err != nil {
		t.Errorf("empty round rejected: %v", err)
	}
	ok := valid()
	if err := CheckRoundAccounting(&ok, 0.5); err != nil {
		t.Fatalf("valid round rejected: %v", err)
	}

	wrongPay := valid()
	wrongPay.Payment += 1
	if err := CheckRoundAccounting(&wrongPay, 0.5); err == nil {
		t.Error("accepted payment off the price·contribution rule")
	}
	wrongFrac := valid()
	if err := CheckRoundAccounting(&wrongFrac, 0); err == nil {
		t.Error("accepted a failure payment the fraction forbids")
	}
	wrongParts := valid()
	wrongParts.Participants = 3
	if err := CheckRoundAccounting(&wrongParts, 0.5); err == nil {
		t.Error("accepted participant miscount")
	}
	wrongDone := valid()
	wrongDone.Completed = 2
	if err := CheckRoundAccounting(&wrongDone, 0.5); err == nil {
		t.Error("accepted completion miscount")
	}
	absentTime := valid()
	absentTime.Times[1] = 3
	if err := CheckRoundAccounting(&absentTime, 0.5); err == nil {
		t.Error("accepted a declined node with nonzero time")
	}
	absentJoin := valid()
	absentJoin.Outcomes[0] = market.OutcomeAbsent
	if err := CheckRoundAccounting(&absentJoin, 0.5); err == nil {
		t.Error("accepted a joined node marked absent")
	}
	badTime := valid()
	badTime.Times[0] = math.NaN()
	if err := CheckRoundAccounting(&badTime, 0.5); err == nil {
		t.Error("accepted NaN round time")
	}
}

func TestCheckTimeLawsOnHandBuiltRounds(t *testing.T) {
	uneven := market.Round{Times: []float64{2, 6, 0}, Participants: 2}
	if err := CheckTimeLaws(&uneven); err != nil {
		t.Errorf("uneven round rejected: %v", err)
	}
	perfect := market.Round{Times: []float64{5, 5}, Participants: 2}
	if err := CheckTimeLaws(&perfect); err != nil {
		t.Errorf("perfect round rejected: %v", err)
	}
	empty := market.Round{}
	if err := CheckTimeLaws(&empty); err != nil {
		t.Errorf("empty round rejected: %v", err)
	}
}

func TestCheckLedgerAcceptsValidHistory(t *testing.T) {
	l, err := market.NewLedger(10)
	if err != nil {
		t.Fatal(err)
	}
	for _, pay := range []float64{2, 3} {
		r := market.Round{Payment: pay, Times: []float64{1, 2}, Participants: 2, Accuracy: 0.5}
		if err := l.Commit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddWaste(4); err != nil {
		t.Fatal(err)
	}
	if err := CheckLedger(l); err != nil {
		t.Errorf("valid ledger rejected: %v", err)
	}
}

func TestApproxEqualTreatsNaNAsUnequal(t *testing.T) {
	if approxEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN compared equal")
	}
	if approxEqual(1, math.NaN(), 1) {
		t.Error("NaN compared equal to 1")
	}
	if !approxEqual(1e12, 1e12*(1+1e-12), tolExact) {
		t.Error("relative tolerance not scaled by magnitude")
	}
}

func TestTrialSeedsAreDistinct(t *testing.T) {
	// Distinct (offset, trial) pairs in the ranges tests actually use must
	// never replay the same RNG stream.
	seen := make(map[int64][2]int64)
	for offset := int64(100); offset < 600; offset += 100 {
		for trial := 0; trial < DefaultTrials; trial++ {
			s := trialSeed(offset, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %d",
					offset, trial, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{offset, int64(trial)}
		}
	}
}
