package propcheck

import (
	"math"
	"math/rand"
	"testing"
)

// TestStepInvariantsProperty drives whole episodes of random environments
// (random fleets, churn, fault schedules, deadlines, quorums, failure
// payments) with adversarial price vectors and checks every paper law the
// environment must uphold at each step:
//
//   - joined nodes follow the Eqn. (11) clipped best response — comm
//     jitter may change participation but never ζ*;
//   - the failure-payment-exact accounting rule and the participant /
//     completion counts (CheckRoundAccounting);
//   - T_k = max_i T_{i,k}, deadline caps, Lemma 1 idle-time sign, and the
//     Eqn. (16) efficiency range (CheckTimeLaws);
//   - quorum-missed rounds freeze the accuracy;
//   - the Eqn. (14)/(15) reward identities, including the empty-offer
//     timeout penalty;
//   - the ledger never overspends η and a budget stop leaves no trace.
func TestStepInvariantsProperty(t *testing.T) {
	Trials(t, 301, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		env, err := RandomEnv(rng, 6)
		if err != nil {
			t.Fatalf("trial %d: RandomEnv: %v", trial, err)
		}
		if err := env.Reset(); err != nil {
			t.Fatalf("trial %d: Reset: %v", trial, err)
		}
		cfg := env.Config()
		ledger := env.Ledger()
		lastAcc := cfg.Accuracy.Accuracy()
		minQuorum := cfg.MinQuorum
		if minQuorum <= 0 {
			minQuorum = 1
		}
		steps := 0
		for !env.Done() {
			envRound := env.Round()
			prices := RandomPrices(rng, env)
			roundsBefore := ledger.NumRounds()
			wasteBefore := ledger.WastedTime()
			remBefore := ledger.Remaining()
			res, err := env.Step(prices)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, steps, err)
			}
			if err := CheckLedger(ledger); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, steps, err)
			}
			switch {
			case ledger.NumRounds() > roundsBefore: // a committed training round
				r := &ledger.Rounds()[ledger.NumRounds()-1]
				if err := CheckRoundAccounting(r, cfg.FailurePayment); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, steps, err)
				}
				if err := CheckTimeLaws(r); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, steps, err)
				}
				// The churn checker needs the environment round the record
				// was played at, not its ledger index — empty offers advance
				// the former without the latter.
				if err := CheckChurnRound(r, cfg.Churn, envRound); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, steps, err)
				}
				if err := CheckQuorumRule(r, lastAcc, cfg.MinQuorum); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, steps, err)
				}
				for i, node := range env.Nodes() {
					if r.Freqs[i] <= 0 {
						continue
					}
					interior := prices[i] / (2 * node.Capacitance * float64(node.Epochs) * node.CyclesPerBit * node.DataBits)
					clipped := math.Min(math.Max(interior, node.FreqMin), node.FreqMax)
					if !approxEqual(r.Freqs[i], clipped, tolExact) {
						t.Fatalf("trial %d step %d node %d: ζ=%v, Eqn. (11) gives %v",
							trial, steps, i, r.Freqs[i], clipped)
					}
					if cfg.RoundDeadline > 0 && r.Times[i] > cfg.RoundDeadline*(1+tolExact) {
						t.Fatalf("trial %d step %d node %d: time %v past deadline %v",
							trial, steps, i, r.Times[i], cfg.RoundDeadline)
					}
				}
				if r.Completed < minQuorum && r.Accuracy != lastAcc {
					t.Fatalf("trial %d step %d: quorum missed (%d < %d) but accuracy moved %v → %v",
						trial, steps, r.Completed, minQuorum, lastAcc, r.Accuracy)
				}
				wantExt := cfg.Lambda*(r.Accuracy-lastAcc) - cfg.TimeWeight*r.RoundTime()
				if !approxEqual(res.ExteriorReward, wantExt, tolLoose) {
					t.Fatalf("trial %d step %d: exterior reward %v ≠ λΔA − wT = %v",
						trial, steps, res.ExteriorReward, wantExt)
				}
				if !approxEqual(res.InnerReward, -r.IdleTime(), tolLoose) {
					t.Fatalf("trial %d step %d: inner reward %v ≠ −idle = %v",
						trial, steps, res.InnerReward, -r.IdleTime())
				}
				if res.InnerReward > tolExact {
					t.Fatalf("trial %d step %d: inner reward %v > 0 violates Lemma 1's sign",
						trial, steps, res.InnerReward)
				}
				lastAcc = r.Accuracy
			case ledger.WastedTime() > wasteBefore: // empty offer: timeout penalty
				timeout := cfg.EmptyRoundTimeout
				if !approxEqual(ledger.WastedTime()-wasteBefore, timeout, tolExact) {
					t.Fatalf("trial %d step %d: waste grew %v, want timeout %v",
						trial, steps, ledger.WastedTime()-wasteBefore, timeout)
				}
				if !approxEqual(res.ExteriorReward, -cfg.TimeWeight*timeout, tolExact) {
					t.Fatalf("trial %d step %d: empty-offer exterior reward %v, want %v",
						trial, steps, res.ExteriorReward, -cfg.TimeWeight*timeout)
				}
				if !approxEqual(res.InnerReward, -float64(env.NumNodes())*timeout, tolExact) {
					t.Fatalf("trial %d step %d: empty-offer inner reward %v, want %v",
						trial, steps, res.InnerReward, -float64(env.NumNodes())*timeout)
				}
				if ledger.Remaining() != remBefore {
					t.Fatalf("trial %d step %d: empty offer spent budget", trial, steps)
				}
			default: // budget stop: discarded round, episode over, no trace
				if !res.Done {
					t.Fatalf("trial %d step %d: nothing recorded yet episode continues", trial, steps)
				}
				if res.ExteriorReward != 0 || res.InnerReward != 0 {
					t.Fatalf("trial %d step %d: budget stop carried rewards %v/%v",
						trial, steps, res.ExteriorReward, res.InnerReward)
				}
				if ledger.Remaining() != remBefore {
					t.Fatalf("trial %d step %d: budget stop changed the ledger", trial, steps)
				}
			}
			steps++
			if steps > cfg.MaxRounds {
				t.Fatalf("trial %d: episode ran %d steps past MaxRounds %d", trial, steps, cfg.MaxRounds)
			}
		}
		// A finished episode must refuse further steps.
		if _, err := env.Step(make([]float64, env.NumNodes())); err == nil {
			t.Fatalf("trial %d: Step on finished episode succeeded", trial)
		}
	})
}
