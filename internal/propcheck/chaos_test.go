package propcheck

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/faults"
	"chiron/internal/supervise"
)

// chaosTarget is the surface the chaos harness drives: a supervisable
// mechanism whose episode driver accepts a kill hook.
type chaosTarget interface {
	supervise.Target
	SetRoundHook(func(episode, round int) error)
}

// errInjectedKill is the synthetic crash the kill hook raises.
var errInjectedKill = errors.New("chaos: injected kill")

// killPoint schedules one crash at (0-based episode, 1-based round).
type killPoint struct{ episode, round int }

// killPlan fires scheduled kills in order. Matching is "at or after" the
// scheduled point, so a kill lands even when its exact round never occurs
// (an episode that terminates early fires the kill at the next episode's
// first round instead). Consumed kills never refire, which is exactly a
// real crash: the fault struck once, and the recovered process continues
// past it.
type killPlan struct{ kills []killPoint }

func (p *killPlan) hook(episode, round int) error {
	if len(p.kills) == 0 {
		return nil
	}
	k := p.kills[0]
	if episode > k.episode || (episode == k.episode && round >= k.round) {
		p.kills = p.kills[1:]
		return fmt.Errorf("%w at episode %d round %d", errInjectedKill, episode, round)
	}
	return nil
}

// chaosBuilders constructs each learnable mechanism on the noise-free
// resume environment (see resumeEnv for why NoiseStd must be 0).
var chaosBuilders = []struct {
	name string
	make func(t *testing.T, seed int64) chaosTarget
}{
	{"chiron", func(t *testing.T, seed int64) chaosTarget {
		cfg := core.DefaultConfig()
		cfg.Exterior = smallPPO(cfg.Exterior)
		cfg.Inner = smallPPO(cfg.Inner)
		// Larger than one episode's rounds: kills land mid-batch and the
		// checkpoints must carry buffered experience across the crash.
		cfg.MinUpdateSamples = 48
		cfg.Seed = seed
		ch, err := core.New(resumeEnv(t, seed), cfg)
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		return ch
	}},
	{"drl-based", func(t *testing.T, seed int64) chaosTarget {
		cfg := baselines.DefaultDRLBasedConfig()
		cfg.PPO = smallPPO(cfg.PPO)
		cfg.Seed = seed
		d, err := baselines.NewDRLBased(resumeEnv(t, seed), cfg)
		if err != nil {
			t.Fatalf("NewDRLBased: %v", err)
		}
		return d
	}},
	{"greedy", func(t *testing.T, seed int64) chaosTarget {
		cfg := baselines.DefaultGreedyConfig()
		cfg.Epsilon = 0.5 // explore often so recovery exercises the ε stream
		cfg.Seed = seed
		g, err := baselines.NewGreedy(resumeEnv(t, seed), cfg)
		if err != nil {
			t.Fatalf("NewGreedy: %v", err)
		}
		return g
	}},
}

// finalDigest checkpoints the target and returns the exact bytes — the
// complete training state (weights, optimizer moments, carried buffers,
// RNG draw counts, episode counter) in the unified JSON format.
func finalDigest(t *testing.T, target supervise.Target, dir string) []byte {
	t.Helper()
	path := filepath.Join(dir, "digest.json")
	if err := target.SaveCheckpoint(path); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read digest: %v", err)
	}
	return data
}

// TestChaosResumeBitIdentity is the chaos harness: for every learnable
// mechanism at seeds 1, 2, 3 it kills a training run at seed-random rounds
// (via the episode driver's round hook), recovers each crash through the
// supervisor's checkpoint machinery, and requires the final run digest —
// the complete serialized training state — to be byte-identical to an
// uninterrupted run of the same seed. Any drift in RNG accounting, weight
// restoration, buffer carry, or episode counting fails the byte compare.
func TestChaosResumeBitIdentity(t *testing.T) {
	const total = 5
	for _, b := range chaosBuilders {
		b := b
		for _, seed := range []int64{1, 2, 3} {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", b.name, seed), func(t *testing.T) {
				t.Parallel()

				ref := b.make(t, seed)
				if _, err := ref.Train(total, nil); err != nil {
					t.Fatalf("uninterrupted run: %v", err)
				}
				want := finalDigest(t, ref, t.TempDir())

				// Two seed-random kill points, in schedule order, early
				// enough that both are guaranteed to fire before the run
				// finishes.
				krng := rand.New(rand.NewSource(seed * 7919))
				e1 := krng.Intn(total - 2)
				e2 := e1 + 1 + krng.Intn(total-2-e1)
				plan := &killPlan{kills: []killPoint{
					{episode: e1, round: 1 + krng.Intn(4)},
					{episode: e2, round: 1 + krng.Intn(4)},
				}}

				runner, err := supervise.New(func() (supervise.Target, error) {
					target := b.make(t, seed)
					target.SetRoundHook(plan.hook)
					return target, nil
				}, supervise.Config{
					Dir:   t.TempDir(),
					Every: 2,
					Keep:  3,
					Retry: faults.Backoff{MaxRetries: 4},
					Sleep: func(time.Duration) {},
				})
				if err != nil {
					t.Fatalf("supervise.New: %v", err)
				}
				target, report, err := runner.Run(total, nil)
				if err != nil {
					t.Fatalf("supervised run: %v", err)
				}
				if report.Restarts != 2 {
					t.Fatalf("restarts %d, want 2 (both kills must fire)", report.Restarts)
				}
				if target.Episode() != total {
					t.Fatalf("recovered run finished at episode %d, want %d", target.Episode(), total)
				}
				got := finalDigest(t, target, t.TempDir())
				if !bytes.Equal(got, want) {
					t.Fatalf("final digest after kill+recover differs from the uninterrupted run\n"+
						"(%d vs %d bytes; any one-ULP weight or one-draw RNG drift fails this)",
						len(got), len(want))
				}
			})
		}
	}
}

// TestChaosCorruptCheckpointFallback extends the harness with storage
// damage: the newest checkpoint is torn in half while the supervisor backs
// off after a kill, so recovery must fall back to the previous file and
// replay further — and the final digest must still match the uninterrupted
// run byte-for-byte.
func TestChaosCorruptCheckpointFallback(t *testing.T) {
	const (
		seed  = int64(1)
		total = 5
	)
	b := chaosBuilders[0] // chiron: the deepest state (two agents + buffers)

	ref := b.make(t, seed)
	if _, err := ref.Train(total, nil); err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := finalDigest(t, ref, t.TempDir())

	plan := &killPlan{kills: []killPoint{{episode: 3, round: 2}}}
	var runner *supervise.Runner
	cfg := supervise.Config{
		Dir:   t.TempDir(),
		Every: 1,
		Keep:  4,
		Retry: faults.Backoff{Base: 0.1, MaxRetries: 2},
	}
	cfg.Sleep = func(time.Duration) {
		// Ride the restart pause: tear the newest checkpoint so recovery
		// must fall back past it.
		paths, err := runner.Checkpoints()
		if err != nil || len(paths) == 0 {
			t.Errorf("list checkpoints during backoff: %v (%d files)", err, len(paths))
			return
		}
		data, err := os.ReadFile(paths[0])
		if err != nil {
			t.Errorf("read %s: %v", paths[0], err)
			return
		}
		if err := os.WriteFile(paths[0], data[:len(data)/2], 0o644); err != nil {
			t.Errorf("truncate %s: %v", paths[0], err)
		}
	}
	runner, err := supervise.New(func() (supervise.Target, error) {
		target := b.make(t, seed)
		target.SetRoundHook(plan.hook)
		return target, nil
	}, cfg)
	if err != nil {
		t.Fatalf("supervise.New: %v", err)
	}
	target, report, err := runner.Run(total, nil)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if report.Restarts != 1 || report.CorruptSkipped != 1 {
		t.Fatalf("restarts %d corrupt-skipped %d, want 1 and 1", report.Restarts, report.CorruptSkipped)
	}
	got := finalDigest(t, target, t.TempDir())
	if !bytes.Equal(got, want) {
		t.Fatalf("final digest after corrupt-fallback recovery differs from the uninterrupted run (%d vs %d bytes)",
			len(got), len(want))
	}
}
