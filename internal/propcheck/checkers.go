package propcheck

import (
	"fmt"
	"math"

	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/market"
	"chiron/internal/mechanism"
)

// approxEqual reports whether a and b agree to a relative tolerance of
// eps, scaled by the larger magnitude (with an absolute floor of eps for
// values near zero).
func approxEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= eps*scale
}

const (
	// tolExact covers pure floating-point reassociation error in values
	// the code computes with the same formula the checker uses.
	tolExact = 1e-9
	// tolLoose covers values that accumulate across many rounds.
	tolLoose = 1e-7
)

// CheckBestResponse verifies a node's reaction to one posted price against
// OP_{i,k}: the chosen frequency lies in the feasible box and is the
// clipped maximizer of Eqn. (11); no ±δ perturbation of ζ inside the box
// improves utility; the reported payment, time, energy, and utility are
// internally consistent; and participation is individually rational — a
// participating node clears its reserve μ_i, a declining node could not
// have cleared it even at its optimum.
func CheckBestResponse(n *device.Node, price float64) error {
	resp := n.BestResponse(price)
	if price <= 0 {
		if resp.Participating {
			return fmt.Errorf("node %d participates at non-positive price %v", n.ID, price)
		}
		return nil
	}
	interior := price / (2 * n.Capacitance * float64(n.Epochs) * n.CyclesPerBit * n.DataBits)
	clipped := math.Min(math.Max(interior, n.FreqMin), n.FreqMax)
	if !resp.Participating {
		// IR of the decline branch: even the optimal frequency cannot
		// reach the reserve.
		if u := n.Utility(price, clipped); u >= n.Reserve+tolExact*math.Max(1, math.Abs(u)) {
			return fmt.Errorf("node %d declined price %v but ζ*=%v yields utility %v ≥ reserve %v",
				n.ID, price, clipped, u, n.Reserve)
		}
		return nil
	}
	if resp.Freq < n.FreqMin || resp.Freq > n.FreqMax {
		return fmt.Errorf("node %d chose ζ=%v outside [%v,%v]", n.ID, resp.Freq, n.FreqMin, n.FreqMax)
	}
	if !approxEqual(resp.Freq, clipped, tolExact) {
		return fmt.Errorf("node %d chose ζ=%v, Eqn. (11) clipped optimum is %v", n.ID, resp.Freq, clipped)
	}
	if !approxEqual(resp.Payment, price*resp.Freq, tolExact) {
		return fmt.Errorf("node %d payment %v ≠ p·ζ = %v", n.ID, resp.Payment, price*resp.Freq)
	}
	if !approxEqual(resp.Time, n.RoundTime(resp.Freq), tolExact) {
		return fmt.Errorf("node %d time %v ≠ T^cmp+T^com = %v", n.ID, resp.Time, n.RoundTime(resp.Freq))
	}
	if !approxEqual(resp.Utility, n.Utility(price, resp.Freq), tolExact) {
		return fmt.Errorf("node %d utility %v ≠ p·ζ−E = %v", n.ID, resp.Utility, n.Utility(price, resp.Freq))
	}
	// Individual rationality: the realized utility clears the reserve.
	if resp.Utility < n.Reserve-tolExact*math.Max(1, n.Reserve) {
		return fmt.Errorf("node %d participates with utility %v below reserve %v", n.ID, resp.Utility, n.Reserve)
	}
	// ζ* optimality via ±δ perturbation at several scales: utility is
	// strictly concave in ζ, so no feasible perturbation may win.
	span := n.FreqMax - n.FreqMin
	tol := tolExact * math.Max(1, math.Abs(resp.Utility))
	for _, frac := range []float64{1e-4, 1e-2, 0.25} {
		for _, sign := range []float64{-1, 1} {
			alt := resp.Freq + sign*frac*span
			alt = math.Min(math.Max(alt, n.FreqMin), n.FreqMax)
			if u := n.Utility(price, alt); u > resp.Utility+tol {
				return fmt.Errorf("node %d: perturbed ζ=%v beats ζ*=%v (%v > %v) at price %v",
					n.ID, alt, resp.Freq, u, resp.Utility, price)
			}
		}
	}
	return nil
}

// CheckSimplex verifies an inner-agent allocation: non-negative entries
// summing to 1 (the action space of Eqn. 13's a^I).
func CheckSimplex(props []float64) error {
	if len(props) == 0 {
		return fmt.Errorf("empty allocation")
	}
	var sum float64
	for i, p := range props {
		if math.IsNaN(p) || p < -tolExact {
			return fmt.Errorf("allocation[%d] = %v, want ≥ 0", i, p)
		}
		sum += p
	}
	if !approxEqual(sum, 1, tolLoose) {
		return fmt.Errorf("allocation sums to %v, want 1", sum)
	}
	return nil
}

// CheckPriceDecomposition verifies Eqn. (13): every per-node price is the
// exterior total times the inner allocation share, and the shares exhaust
// the total.
func CheckPriceDecomposition(total float64, props, prices []float64) error {
	if len(props) != len(prices) {
		return fmt.Errorf("%d shares for %d prices", len(props), len(prices))
	}
	if err := CheckSimplex(props); err != nil {
		return err
	}
	var sum float64
	for i := range prices {
		if !approxEqual(prices[i], total*props[i], tolExact) {
			return fmt.Errorf("price[%d] = %v ≠ a^E·a^I = %v", i, prices[i], total*props[i])
		}
		sum += prices[i]
	}
	if !approxEqual(sum, total, tolLoose) {
		return fmt.Errorf("prices sum to %v, want total %v", sum, total)
	}
	return nil
}

// CheckRoundAccounting verifies one committed round record: participant
// and completion counts match the per-node vectors, every joined node has
// a positive frequency and time, and the payment equals
// Σ p_i·ζ_i over completed nodes plus failurePayment·p_i·ζ_i over failed
// ones — the failure-payment-exact accounting rule.
func CheckRoundAccounting(r *market.Round, failurePayment float64) error {
	n := len(r.Prices)
	if len(r.Freqs) != n || len(r.Times) != n {
		return fmt.Errorf("vector lengths differ: %d prices, %d freqs, %d times",
			n, len(r.Freqs), len(r.Times))
	}
	if r.Outcomes != nil && len(r.Outcomes) != n {
		return fmt.Errorf("%d outcomes for %d nodes", len(r.Outcomes), n)
	}
	var wantPayment float64
	participants, completed := 0, 0
	for i := 0; i < n; i++ {
		joined := r.Freqs[i] > 0
		outcome := market.OutcomeCompleted
		if r.Outcomes != nil {
			outcome = r.Outcomes[i]
		}
		if !joined {
			if r.Outcomes != nil && outcome != market.OutcomeAbsent {
				return fmt.Errorf("node %d has ζ=0 but outcome %v", i, outcome)
			}
			if r.Times[i] != 0 {
				return fmt.Errorf("absent node %d has time %v", i, r.Times[i])
			}
			continue
		}
		participants++
		if r.Times[i] <= 0 || math.IsNaN(r.Times[i]) || math.IsInf(r.Times[i], 0) {
			return fmt.Errorf("joined node %d has time %v", i, r.Times[i])
		}
		pay := r.Prices[i] * r.Freqs[i]
		switch {
		case outcome == market.OutcomeCompleted:
			completed++
			wantPayment += pay
		case outcome.Failed():
			wantPayment += pay * failurePayment
		default:
			return fmt.Errorf("joined node %d has outcome %v", i, outcome)
		}
	}
	if r.Participants != participants {
		return fmt.Errorf("Participants = %d, vectors say %d", r.Participants, participants)
	}
	// Zero-valued Completed on a clean legacy record implies everyone
	// completed; otherwise the count must match.
	if r.Outcomes != nil && r.Completed != completed {
		return fmt.Errorf("Completed = %d, outcomes say %d", r.Completed, completed)
	}
	if !approxEqual(r.Payment, wantPayment, tolLoose) {
		return fmt.Errorf("payment %v ≠ price·contribution accounting %v (failure fraction %v)",
			r.Payment, wantPayment, failurePayment)
	}
	return nil
}

// CheckChurnRound verifies one committed round record against the fleet's
// churn schedule at the environment round it was played: a node outside
// the fleet must be absent from the record (no frequency, no time, no
// payment basis), a joined node the schedule removes mid-round must settle
// as OutcomeDeparted, and OutcomeDeparted may appear only on nodes the
// schedule actually departs. round is the environment's 1-based round
// index (not the ledger's record index — empty offers advance the former
// but not the latter). A nil schedule means a fixed fleet: nobody may
// depart.
func CheckChurnRound(r *market.Round, churn faults.ChurnSchedule, round int) error {
	for i := range r.Freqs {
		present, departs := true, false
		if churn != nil {
			present, departs = churn.Membership(round, i)
		}
		joined := r.Freqs[i] > 0
		outcome := market.OutcomeCompleted
		if r.Outcomes != nil {
			outcome = r.Outcomes[i]
		}
		if !present {
			if joined || r.Times[i] != 0 {
				return fmt.Errorf("node %d outside the fleet at round %d but has ζ=%v, t=%v",
					i, round, r.Freqs[i], r.Times[i])
			}
			if r.Outcomes != nil && outcome != market.OutcomeAbsent {
				return fmt.Errorf("node %d outside the fleet at round %d but has outcome %v",
					i, round, outcome)
			}
			continue
		}
		if joined && departs && outcome != market.OutcomeDeparted {
			return fmt.Errorf("node %d departs at round %d but joined with outcome %v",
				i, round, outcome)
		}
		if outcome == market.OutcomeDeparted && !departs {
			return fmt.Errorf("node %d marked departed at round %d but the schedule keeps it",
				i, round)
		}
	}
	return nil
}

// CheckQuorumRule verifies the Commit stage's quorum law on one committed
// round: a round completing fewer than minQuorum updates must leave the
// model — and thus the recorded accuracy — exactly where it was.
// prevAccuracy is the accuracy after the previous committed round; pass
// NaN when unknown (the first committed round) to check only the range
// laws. minQuorum ≤ 0 means the environment's default of 1.
func CheckQuorumRule(r *market.Round, prevAccuracy float64, minQuorum int) error {
	if minQuorum <= 0 {
		minQuorum = 1
	}
	if math.IsNaN(r.Accuracy) || r.Accuracy < 0 || r.Accuracy > 1+tolExact {
		return fmt.Errorf("recorded accuracy %v outside [0,1]", r.Accuracy)
	}
	if r.Completed < minQuorum && !math.IsNaN(prevAccuracy) && r.Accuracy != prevAccuracy {
		return fmt.Errorf("quorum missed (%d < %d) but accuracy moved %v → %v",
			r.Completed, minQuorum, prevAccuracy, r.Accuracy)
	}
	return nil
}

// CheckTimeLaws verifies the timing laws on one round: the round time is
// max_i T_{i,k}; idle time (the quantity Lemma 1's reward minimizes) is
// non-negative and zero exactly when every node finishes together; and
// Eqn. (16) time efficiency lies in [0,1], reaching 1 exactly at zero
// idle time.
func CheckTimeLaws(r *market.Round) error {
	var maxT float64
	for _, t := range r.Times {
		if t > maxT {
			maxT = t
		}
	}
	if got := r.RoundTime(); !approxEqual(got, maxT, tolExact) {
		return fmt.Errorf("RoundTime %v ≠ max_i T_i = %v", got, maxT)
	}
	idle := r.IdleTime()
	if idle < -tolLoose*math.Max(1, maxT) {
		return fmt.Errorf("idle time %v negative", idle)
	}
	allEqual := true
	for _, t := range r.Times {
		if !approxEqual(t, maxT, tolExact) {
			allEqual = false
			break
		}
	}
	scale := math.Max(1, maxT*float64(len(r.Times)))
	if allEqual && math.Abs(idle) > tolLoose*scale {
		return fmt.Errorf("all nodes finish at %v but idle time is %v", maxT, idle)
	}
	if !allEqual && len(r.Times) > 0 && idle <= 0 {
		return fmt.Errorf("unequal finish times but idle time %v ≤ 0", idle)
	}
	eff := r.TimeEfficiency()
	if eff < -tolExact || eff > 1+tolExact {
		return fmt.Errorf("time efficiency %v outside [0,1]", eff)
	}
	if maxT > 0 {
		if allEqual && !approxEqual(eff, 1, tolLoose) {
			return fmt.Errorf("zero idle time but efficiency %v ≠ 1", eff)
		}
		if !allEqual && eff >= 1 {
			return fmt.Errorf("positive idle time but efficiency %v ≥ 1", eff)
		}
	}
	return nil
}

// CheckLedger verifies the budget feasibility of OP_PS on a ledger in any
// state: spending never exceeds η, the remaining budget is exactly η minus
// the recorded payments, round indices are sequential, and the aggregate
// time metrics are consistent with the round records.
func CheckLedger(l *market.Ledger) error {
	budget := l.Budget()
	if l.Remaining() < -tolExact*budget || l.Remaining() > budget*(1+tolExact) {
		return fmt.Errorf("remaining %v outside [0, η=%v]", l.Remaining(), budget)
	}
	var spent, roundTime float64
	for i := range l.Rounds() {
		r := &l.Rounds()[i]
		if r.Index != i+1 {
			return fmt.Errorf("round %d has index %d", i, r.Index)
		}
		if r.Payment < 0 || math.IsNaN(r.Payment) {
			return fmt.Errorf("round %d payment %v", i, r.Payment)
		}
		spent += r.Payment
		roundTime += r.RoundTime()
	}
	if !approxEqual(l.TotalSpent(), spent, tolLoose) {
		return fmt.Errorf("TotalSpent %v ≠ Σ payments %v", l.TotalSpent(), spent)
	}
	if !approxEqual(l.TotalSpent()+l.Remaining(), budget, tolLoose) {
		return fmt.Errorf("spent %v + remaining %v ≠ η = %v", l.TotalSpent(), l.Remaining(), budget)
	}
	if spent > budget*(1+tolExact) {
		return fmt.Errorf("ledger overspent: %v of η=%v", spent, budget)
	}
	if l.WastedTime() < 0 {
		return fmt.Errorf("negative wasted time %v", l.WastedTime())
	}
	if !approxEqual(l.TotalTime(), roundTime+l.WastedTime(), tolLoose) {
		return fmt.Errorf("TotalTime %v ≠ Σ T_k + waste = %v", l.TotalTime(), roundTime+l.WastedTime())
	}
	if eff := l.MeanTimeEfficiency(); eff < -tolExact || eff > 1+tolExact {
		return fmt.Errorf("mean time efficiency %v outside [0,1]", eff)
	}
	return nil
}

// CheckEpisodeResult verifies an episode summary against the environment
// ledger it was extracted from: round counts, budget accounting, time
// metrics, and the Eqn. (9) server utility identity.
func CheckEpisodeResult(env *edgeenv.Env, res mechanism.EpisodeResult) error {
	l := env.Ledger()
	if err := CheckLedger(l); err != nil {
		return err
	}
	if res.Rounds != l.NumRounds() {
		return fmt.Errorf("result rounds %d ≠ ledger rounds %d", res.Rounds, l.NumRounds())
	}
	if !approxEqual(res.BudgetSpent, l.TotalSpent(), tolLoose) {
		return fmt.Errorf("result spent %v ≠ ledger spent %v", res.BudgetSpent, l.TotalSpent())
	}
	if res.BudgetSpent > l.Budget()*(1+tolExact) {
		return fmt.Errorf("episode overspent η: %v of %v", res.BudgetSpent, l.Budget())
	}
	if !approxEqual(res.TotalTime, l.TotalTime(), tolLoose) {
		return fmt.Errorf("result time %v ≠ ledger time %v", res.TotalTime, l.TotalTime())
	}
	if !approxEqual(res.FinalAccuracy, l.FinalAccuracy(), tolExact) {
		return fmt.Errorf("result accuracy %v ≠ ledger accuracy %v", res.FinalAccuracy, l.FinalAccuracy())
	}
	if res.FinalAccuracy < 0 || res.FinalAccuracy > 1+tolExact {
		return fmt.Errorf("final accuracy %v outside [0,1]", res.FinalAccuracy)
	}
	if !approxEqual(res.TimeEfficiency, l.MeanTimeEfficiency(), tolLoose) {
		return fmt.Errorf("result efficiency %v ≠ ledger efficiency %v", res.TimeEfficiency, l.MeanTimeEfficiency())
	}
	cfg := env.Config()
	wantUtility := cfg.Lambda*res.FinalAccuracy - cfg.TimeWeight*res.TotalTime
	if !approxEqual(res.ServerUtility, wantUtility, tolLoose) {
		return fmt.Errorf("server utility %v ≠ λA−wT = %v", res.ServerUtility, wantUtility)
	}
	return nil
}
