package propcheck

import (
	"math"
	"math/rand"
	"testing"
)

// TestBestResponseProperty checks Eqn. (11) optimality, individual
// rationality, and the internal consistency of the best-response record
// over random nodes and price regimes: free, negative, starvation-level,
// interior, and saturating prices.
func TestBestResponseProperty(t *testing.T) {
	Trials(t, 101, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := RandomNode(rng, trial)
		sat := n.PriceForFreq(n.FreqMax)
		prices := []float64{
			0,
			-Uniform(rng, 0, 1),
			Uniform(rng, 0, 0.2) * sat,   // usually below the reserve
			Uniform(rng, 0.2, 1.2) * sat, // interior and clip boundary
			Uniform(rng, 1.2, 5) * sat,   // box-saturated at FreqMax
		}
		for _, p := range prices {
			if err := CheckBestResponse(n, p); err != nil {
				t.Errorf("trial %d, price %v: %v", trial, p, err)
			}
		}
	})
}

// TestOptimalComputeTimeProperty checks Eqn. (12): when the interior
// optimum lands inside the frequency box, the realized compute time equals
// t^{cmp,*} = 2αω²/p.
func TestOptimalComputeTimeProperty(t *testing.T) {
	Trials(t, 102, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := RandomNode(rng, trial)
		// A price constructed from an in-box frequency makes the interior
		// optimum land exactly there (PriceForFreq inverts Eqn. 11).
		f := Uniform(rng, n.FreqMin, n.FreqMax)
		p := n.PriceForFreq(f)
		resp := n.BestResponse(p)
		if !resp.Participating {
			return // the reserve may still block; CheckBestResponse covers IR
		}
		if !approxEqual(resp.Freq, f, tolExact) {
			t.Fatalf("trial %d: interior optimum %v, want %v", trial, resp.Freq, f)
		}
		if got, want := n.ComputeTime(resp.Freq), n.OptimalComputeTime(p); !approxEqual(got, want, tolExact) {
			t.Fatalf("trial %d: compute time %v ≠ 2αω²/p = %v", trial, got, want)
		}
	})
}

// TestMinParticipationPriceProperty checks the participation threshold:
// the bisected price induces participation, a price 0.1%% below it does
// not, and +Inf really means no price up to the cap works.
func TestMinParticipationPriceProperty(t *testing.T) {
	Trials(t, 103, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := RandomNode(rng, trial)
		cap := Uniform(rng, 0.5, 4) * n.PriceForFreq(n.FreqMax)
		pmin := n.MinParticipationPrice(cap)
		if math.IsInf(pmin, 1) {
			if n.BestResponse(cap).Participating {
				t.Fatalf("trial %d: threshold +Inf but cap price %v participates", trial, cap)
			}
			return
		}
		if !n.BestResponse(pmin).Participating {
			t.Fatalf("trial %d: node declines its own threshold price %v", trial, pmin)
		}
		if n.BestResponse(pmin*0.999).Participating {
			t.Fatalf("trial %d: node participates below the threshold %v", trial, pmin)
		}
	})
}
