package propcheck

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"chiron/internal/scenario"
	"chiron/internal/trace"
)

// randomReplaySpec draws a small but fully-loaded scenario: a random
// device-class mix, availability loss, bandwidth jitter, and (half the
// time each) Markov churn and injected faults — the regimes where replay
// determinism is hardest to keep. Budgets stay small so each trial's
// episodes run tens of rounds, not hundreds.
func randomReplaySpec(rng *rand.Rand, trial int) *scenario.Spec {
	profiles := scenario.ProfileNames()
	classes := make([]scenario.DeviceClass, 1+rng.Intn(2))
	for i := range classes {
		classes[i] = scenario.DeviceClass{
			Profile: profiles[rng.Intn(len(profiles))],
			Count:   2 + rng.Intn(2),
		}
	}
	s := &scenario.Spec{
		Name:         fmt.Sprintf("replay-prop-%d", trial),
		Dataset:      []string{"mnist", "fashion"}[rng.Intn(2)],
		Seed:         1 + rng.Int63n(1_000_000),
		Classes:      classes,
		Budgets:      []float64{Uniform(rng, 50, 150)},
		Mechanisms:   []string{[]string{"uniform", "equal-time"}[rng.Intn(2)]},
		EvalEpisodes: 1 + rng.Intn(2),
		Availability: Uniform(rng, 0.6, 1.0),
		CommJitter:   Uniform(rng, 0, 0.35),
	}
	if rng.Intn(2) == 0 {
		s.Churn = &scenario.ChurnSpec{Rates: &scenario.ChurnRatesSpec{
			Depart: Uniform(rng, 0, 0.2),
			Arrive: Uniform(rng, 0.2, 0.6),
		}}
	}
	if rng.Intn(2) == 0 {
		s.Faults = &scenario.FaultSpec{
			Crash:    Uniform(rng, 0, 0.08),
			Straggle: Uniform(rng, 0, 0.10),
			Drop:     Uniform(rng, 0, 0.05),
			Corrupt:  Uniform(rng, 0, 0.03),
		}
		s.FailurePayment = Uniform(rng, 0, 1)
	}
	return s
}

// TestPropReplayBitIdentical is the replay engine's law: for any scenario
// — under churn, faults, availability loss, and comm jitter — recording an
// episode set and replaying the trace with the recorded mechanism and
// budget reproduces every episode summary and every per-round vector
// bit-for-bit, and hence the same ULP-exact digest.
func TestPropReplayBitIdentical(t *testing.T) {
	Trials(t, 801, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		s := randomReplaySpec(rng, trial)
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid spec: %v", trial, err)
		}
		var buf bytes.Buffer
		rec, err := scenario.Record(s, "", 0, trace.NewWriter(&buf))
		if err != nil {
			t.Fatalf("trial %d: Record: %v", trial, err)
		}
		tr, err := trace.Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: read trace: %v", trial, err)
		}
		rep, err := scenario.Replay(tr, scenario.ReplayOptions{})
		if err != nil {
			t.Fatalf("trial %d: Replay: %v", trial, err)
		}
		if rep.Counterfactual {
			t.Fatalf("trial %d: zero-option replay marked counterfactual", trial)
		}
		if !reflect.DeepEqual(rep.Episodes, rec.Episodes) {
			t.Fatalf("trial %d (%s): episodes diverged\n got %+v\nwant %+v",
				trial, s.Name, rep.Episodes, rec.Episodes)
		}
		if !reflect.DeepEqual(rep.Rounds, rec.Rounds) {
			t.Fatalf("trial %d (%s): round records diverged (%d vs %d rounds)",
				trial, s.Name, len(rep.Rounds), len(rec.Rounds))
		}
		if rep.Digest() != rec.Digest() {
			t.Fatalf("trial %d (%s): digest %s != recorded %s",
				trial, s.Name, rep.Digest(), rec.Digest())
		}
	})
}
