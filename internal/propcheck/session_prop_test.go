package propcheck

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"chiron/internal/scenario"
	"chiron/internal/session"
)

// randomSessionSpec draws a small scenario for the serving-layer law:
// static mechanisms mostly (with an occasional trainable greedy cell so
// the gated train-episode path is exercised), availability loss, comm
// jitter, and half the time Markov churn — the regimes where a hosted
// session could plausibly drift from the CLI.
func randomSessionSpec(rng *rand.Rand, trial int) *scenario.Spec {
	profiles := scenario.ProfileNames()
	classes := make([]scenario.DeviceClass, 1+rng.Intn(2))
	for i := range classes {
		classes[i] = scenario.DeviceClass{
			Profile: profiles[rng.Intn(len(profiles))],
			Count:   2 + rng.Intn(2),
		}
	}
	mechs := []string{[]string{"uniform", "equal-time"}[rng.Intn(2)]}
	s := &scenario.Spec{
		Name:         fmt.Sprintf("session-prop-%d", trial),
		Dataset:      []string{"mnist", "fashion"}[rng.Intn(2)],
		Seed:         1 + rng.Int63n(1_000_000),
		Classes:      classes,
		Budgets:      []float64{Uniform(rng, 30, 90)},
		Mechanisms:   mechs,
		EvalEpisodes: 1 + rng.Intn(2),
		MaxRounds:    20 + rng.Intn(21),
		Availability: Uniform(rng, 0.6, 1.0),
		CommJitter:   Uniform(rng, 0, 0.35),
	}
	if rng.Intn(4) == 0 {
		s.Mechanisms = append(s.Mechanisms, "greedy")
		s.TrainEpisodes = 1 + rng.Intn(2)
	}
	if rng.Intn(2) == 0 {
		s.Churn = &scenario.ChurnSpec{Rates: &scenario.ChurnRatesSpec{
			Depart: Uniform(rng, 0, 0.2),
			Arrive: Uniform(rng, 0.2, 0.6),
		}}
	}
	return s
}

// TestPropSessionMatchesCLIDigest is the serving layer's law: for any
// scenario, a server-hosted session — at any worker count, with a pause
// and resume injected at a random episode boundary — produces a run
// digest bit-identical to the CLI's scenario.Run of the same spec and
// seed. Wall-clock lifecycle events must never leak into simulation
// results.
func TestPropSessionMatchesCLIDigest(t *testing.T) {
	Trials(t, 907, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		// Both runs regenerate the identical spec from one child seed, so
		// neither can observe mutations made by the other.
		specSeed := rng.Int63()
		genSpec := func() *scenario.Spec {
			return randomSessionSpec(rand.New(rand.NewSource(specSeed)), trial)
		}
		spec := genSpec()
		if err := spec.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid spec: %v", trial, err)
		}
		want, err := scenario.Run(spec, 1)
		if err != nil {
			t.Fatalf("trial %d: CLI run: %v", trial, err)
		}

		pauseSeq := 1 + rng.Intn(3)
		var s *session.Session
		s, err = session.New(session.Config{
			Spec:    genSpec(),
			Workers: 1 + rng.Intn(3),
			OnEpisode: func(ev session.EpisodeEvent) {
				if ev.Seq == pauseSeq {
					s.Pause()
				}
			},
		})
		if err != nil {
			t.Fatalf("trial %d: session.New: %v", trial, err)
		}
		if err := s.Start(); err != nil {
			t.Fatalf("trial %d: Start: %v", trial, err)
		}
		// Resume whenever the injected pause lands (it may never fire if
		// the run has fewer episode events than pauseSeq).
		for {
			if st := s.State(); st.Terminal() {
				break
			} else if st == session.StatePaused {
				if err := s.Resume(); err != nil {
					t.Fatalf("trial %d: Resume: %v", trial, err)
				}
			}
			runtime.Gosched()
		}
		if got := s.Wait(); got != session.StateDone {
			t.Fatalf("trial %d: final state %s (err %v)", trial, got, s.Err())
		}
		res, err := s.Result()
		if err != nil {
			t.Fatalf("trial %d: Result: %v", trial, err)
		}
		if res.Digest() != want.Digest() {
			t.Fatalf("trial %d (%s): session digest %s != CLI digest %s",
				trial, spec.Name, res.Digest(), want.Digest())
		}
	})
}
