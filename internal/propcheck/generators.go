// Package propcheck is the paper-invariant property harness. It supplies
// two things the unit tests cannot: randomized-but-seeded generators for
// the system's inputs (device fleets, environment configurations, fault
// schedules, price vectors) and reusable checkers for the economic and
// timing laws the reproduction must uphold — the best-response optimality
// of Eqn. (11), individual rationality against the reserve μ_i, the
// simplex allocation and price decomposition of Eqn. (13), exact
// payment/budget accounting under failures, the round-time law
// T_k = max_i T_{i,k}, and the Lemma 1 idle-time/time-efficiency laws.
//
// Property tests in this package and fuzz targets in the home packages
// consume both halves; see DESIGN.md §9 for the invariant catalogue.
package propcheck

import (
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
)

// DefaultTrials is the per-property trial count the harness runs. Each
// trial derives its own RNG from the trial index, so a failure report
// identifies the exact reproducing seed.
const DefaultTrials = 200

// trialSeed derives a deterministic seed for one trial of one property.
// Properties are distinguished by a caller-chosen offset so two properties
// in the same test binary never replay identical input streams.
func trialSeed(offset int64, trial int) int64 {
	return offset*1_000_003 + int64(trial)*97 + 17
}

// Trials runs prop n times with per-trial seeded RNGs and stops at the
// first failing trial, reporting its index (the seed is derivable from
// it). offset namespaces the property's random stream.
func Trials(t *testing.T, offset int64, n int, prop func(t *testing.T, rng *rand.Rand, trial int)) {
	t.Helper()
	for trial := 0; trial < n; trial++ {
		prop(t, rand.New(rand.NewSource(trialSeed(offset, trial))), trial)
		if t.Failed() {
			t.Fatalf("property failed at trial %d (seed offset %d)", trial, offset)
		}
	}
}

// Uniform draws from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Float64()*(hi-lo)
}

// RandomNode draws one structurally valid edge node whose parameters span
// well beyond the paper's Sec. VI-A constants: slow and fast CPUs, thin
// and fat data shards, free and expensive uplinks, zero and binding
// reserves. Every draw satisfies device.Node.Validate.
func RandomNode(rng *rand.Rand, id int) *device.Node {
	freqMin := Uniform(rng, 5e7, 4e8)
	n := &device.Node{
		ID:             id,
		CyclesPerBit:   Uniform(rng, 5, 50),
		DataBits:       Uniform(rng, 5e6, 1e8),
		FreqMin:        freqMin,
		FreqMax:        freqMin * Uniform(rng, 1.5, 25),
		Capacitance:    Uniform(rng, 5e-29, 1e-27),
		CommTime:       Uniform(rng, 0, 40),
		CommEnergyRate: Uniform(rng, 0, 0.02),
		Reserve:        Uniform(rng, 0, 0.1),
		Epochs:         1 + rng.Intn(8),
		SampleCount:    100 + rng.Intn(1500),
	}
	return n
}

// RandomFleet draws n random nodes.
func RandomFleet(rng *rand.Rand, n int) []*device.Node {
	fleet := make([]*device.Node, n)
	for i := range fleet {
		fleet[i] = RandomNode(rng, i)
	}
	return fleet
}

// RandomRates draws a valid fault-rate mix; roughly half the draws are
// fault-free so clean behaviour keeps its share of trials.
func RandomRates(rng *rand.Rand) faults.Rates {
	if rng.Intn(2) == 0 {
		return faults.Rates{}
	}
	// Four shares of a total probability mass below 1.
	mass := Uniform(rng, 0.05, 0.6)
	cut := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
	a, b, c := cut[0], cut[1], cut[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return faults.Rates{
		Crash:    mass * a,
		Straggle: mass * (b - a),
		Drop:     mass * (c - b),
		Corrupt:  mass * (1 - c),
	}
}

// RandomEnv assembles a random but valid environment: a random fleet of
// 2..maxNodes nodes, a surrogate accuracy curve, and randomized budget,
// reward weights, churn, fault schedule, deadline, retry, failure-payment,
// and quorum settings. The explicit EmptyRoundTimeout makes the empty-round
// penalty checkable from the outside.
func RandomEnv(rng *rand.Rand, maxNodes int) (*edgeenv.Env, error) {
	n := 2 + rng.Intn(maxNodes-1)
	fleet := RandomFleet(rng, n)
	presets := []accuracy.Preset{accuracy.PresetMNIST, accuracy.PresetFashion, accuracy.PresetCIFAR}
	acc, err := accuracy.NewPresetCurve(
		rand.New(rand.NewSource(rng.Int63())), presets[rng.Intn(len(presets))], n)
	if err != nil {
		return nil, err
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, Uniform(rng, 30, 400))
	cfg.Lambda = Uniform(rng, 100, 4000)
	cfg.TimeWeight = Uniform(rng, 0, 1.5)
	cfg.MaxRounds = 8 + rng.Intn(25)
	cfg.EmptyRoundTimeout = Uniform(rng, 5, 80)
	if rng.Intn(2) == 0 {
		cfg.CommJitter = Uniform(rng, 0, 0.4)
	}
	if rng.Intn(3) == 0 {
		cfg.Availability = Uniform(rng, 0.5, 1)
	}
	if cfg.CommJitter > 0 || (cfg.Availability > 0 && cfg.Availability < 1) {
		cfg.Rng = rand.New(rand.NewSource(rng.Int63()))
	}
	if rates := RandomRates(rng); rates.Any() {
		sampler, err := faults.NewSampler(rates, rng.Int63())
		if err != nil {
			return nil, err
		}
		cfg.Faults = sampler
	}
	if rng.Intn(2) == 0 {
		// Anywhere from "cuts almost everyone" to "never binds".
		cfg.RoundDeadline = Uniform(rng, 10, 400)
	}
	cfg.MaxRetries = rng.Intn(4)
	cfg.RetryBackoff = Uniform(rng, 0, 3)
	cfg.FailurePayment = Uniform(rng, 0, 1)
	cfg.MinQuorum = rng.Intn(n + 1)
	// Churn draws come last so earlier config draws replay identically for
	// a given trial seed whether or not the fleet churns.
	churn, err := RandomChurn(rng, n)
	if err != nil {
		return nil, err
	}
	cfg.Churn = churn
	return edgeenv.New(cfg)
}

// RandomChurn draws a fleet-membership schedule: nil (a fixed fleet) for
// half the draws, otherwise a seed-deterministic Markov sampler whose
// depart rate stays low enough and arrive rate high enough that the fleet
// thins and recovers without staying empty for whole episodes.
func RandomChurn(rng *rand.Rand, n int) (faults.ChurnSchedule, error) {
	if rng.Intn(2) == 0 {
		return nil, nil
	}
	rates := faults.ChurnRates{
		Depart: Uniform(rng, 0, 0.3),
		Arrive: Uniform(rng, 0.2, 0.9),
	}
	if rng.Intn(3) == 0 {
		rates.InitialAbsent = Uniform(rng, 0, 0.5)
	}
	return faults.NewChurnSampler(rates, rng.Int63())
}

// RandomPrices draws a per-node price vector from one of several regimes:
// the environment's own feasible sampler, a uniform split, a sparse vector
// that prices some nodes out entirely, and an unconstrained draw that can
// overshoot the fleet's saturation price or go non-positive. Step must
// uphold its invariants under all of them.
func RandomPrices(rng *rand.Rand, env *edgeenv.Env) []float64 {
	n := env.NumNodes()
	switch rng.Intn(4) {
	case 0:
		return env.RandomPrices(rng)
	case 1:
		per := Uniform(rng, 0, env.MaxTotalPrice()/float64(n))
		prices := make([]float64, n)
		for i := range prices {
			prices[i] = per
		}
		return prices
	case 2:
		prices := env.RandomPrices(rng)
		for i := range prices {
			if rng.Intn(2) == 0 {
				prices[i] = 0
			}
		}
		return prices
	default:
		prices := make([]float64, n)
		for i, node := range env.Nodes() {
			prices[i] = Uniform(rng, -0.5, 2.5) * node.PriceForFreq(node.FreqMax)
		}
		return prices
	}
}
