package propcheck

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/market"
)

// churnPropEnv builds a random environment whose fleet always churns:
// roughly half the trials replay a scripted arrival/departure plan, the
// rest run the seed-deterministic Markov sampler, both over a random
// fleet with random failure-payment, deadline, and quorum settings.
func churnPropEnv(rng *rand.Rand) (*edgeenv.Env, error) {
	n := 2 + rng.Intn(5)
	fleet := RandomFleet(rng, n)
	acc, err := accuracy.NewPresetCurve(
		rand.New(rand.NewSource(rng.Int63())), accuracy.PresetMNIST, n)
	if err != nil {
		return nil, err
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, Uniform(rng, 30, 300))
	cfg.MaxRounds = 8 + rng.Intn(17)
	cfg.EmptyRoundTimeout = Uniform(rng, 5, 60)
	if rng.Intn(2) == 0 {
		cfg.RoundDeadline = Uniform(rng, 10, 400)
	}
	if rates := RandomRates(rng); rates.Any() {
		sampler, err := faults.NewSampler(rates, rng.Int63())
		if err != nil {
			return nil, err
		}
		cfg.Faults = sampler
	}
	cfg.FailurePayment = Uniform(rng, 0, 1)
	cfg.MinQuorum = rng.Intn(n + 1)
	if rng.Intn(2) == 0 {
		cfg.Churn, err = randomChurnScript(rng, n, cfg.MaxRounds)
	} else {
		cfg.Churn, err = faults.NewChurnSampler(faults.ChurnRates{
			Depart:        Uniform(rng, 0.05, 0.5),
			Arrive:        Uniform(rng, 0.1, 0.9),
			InitialAbsent: Uniform(rng, 0, 0.6),
		}, rng.Int63())
	}
	if err != nil {
		return nil, err
	}
	return edgeenv.New(cfg)
}

// randomChurnScript draws a valid scripted schedule: per node, a sorted
// sequence of alternating depart/arrive rounds.
func randomChurnScript(rng *rand.Rand, nodes, maxRounds int) (*faults.ChurnScript, error) {
	var events []faults.ChurnEvent
	for node := 0; node < nodes; node++ {
		kind := faults.ChurnDepart
		if rng.Intn(4) == 0 {
			kind = faults.ChurnArrive // node starts outside the fleet
		}
		for round := 1 + rng.Intn(4); round <= maxRounds; round += 1 + rng.Intn(6) {
			events = append(events, faults.ChurnEvent{Round: round, Node: node, Kind: kind})
			if kind == faults.ChurnDepart {
				kind = faults.ChurnArrive
			} else {
				kind = faults.ChurnDepart
			}
		}
	}
	return faults.NewChurnScript(events)
}

// TestChurnLawsProperty runs ≥200 random churning episodes — scripted and
// sampled schedules alike — under adversarial prices and checks the
// survivability laws at every step: the ledger identity stays exact (the
// budget-η accounting of CheckLedger), per-round payments follow the
// failure-payment rule with departures settling at the failure fraction,
// churn-absent nodes never appear in a record, mid-round departures always
// settle as departed, and below-quorum rounds freeze the model.
func TestChurnLawsProperty(t *testing.T) {
	departuresSeen := 0
	Trials(t, 601, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		env, err := churnPropEnv(rng)
		if err != nil {
			t.Fatalf("trial %d: churnPropEnv: %v", trial, err)
		}
		if err := env.Reset(); err != nil {
			t.Fatalf("trial %d: Reset: %v", trial, err)
		}
		cfg := env.Config()
		ledger := env.Ledger()
		prevAcc := math.NaN()
		for !env.Done() {
			envRound := env.Round()
			roundsBefore := ledger.NumRounds()
			res, err := env.Step(RandomPrices(rng, env))
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, envRound, err)
			}
			if err := CheckLedger(ledger); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, envRound, err)
			}
			if ledger.NumRounds() == roundsBefore {
				continue // empty offer or budget stop: no record to check
			}
			r := &res.Round
			if err := CheckRoundAccounting(r, cfg.FailurePayment); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, envRound, err)
			}
			if err := CheckChurnRound(r, cfg.Churn, envRound); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, envRound, err)
			}
			if err := CheckQuorumRule(r, prevAcc, cfg.MinQuorum); err != nil {
				t.Fatalf("trial %d round %d: %v", trial, envRound, err)
			}
			for _, o := range r.Outcomes {
				if o == market.OutcomeDeparted {
					departuresSeen++
				}
			}
			prevAcc = r.Accuracy
		}
	})
	// The laws above are vacuous if no trial ever exercises a mid-round
	// departure; the generator's rates make that practically impossible.
	if departuresSeen == 0 {
		t.Fatal("no mid-round departure settled across all trials; churn generator is broken")
	}
}
