package propcheck

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"chiron/internal/market"
)

// TestLedgerNeverOverspendsProperty hammers a ledger with random commit,
// waste, and reset sequences — including overdrafts, negative and
// non-finite payments — and checks the OP_PS budget feasibility laws after
// every operation: the ledger either absorbs a round exactly or rejects it
// leaving no trace, and spending never exceeds η.
func TestLedgerNeverOverspendsProperty(t *testing.T) {
	Trials(t, 201, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		budget := Uniform(rng, 1, 500)
		l, err := market.NewLedger(budget)
		if err != nil {
			t.Fatalf("trial %d: NewLedger(%v): %v", trial, budget, err)
		}
		ops := 5 + rng.Intn(40)
		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0: // occasional reset back to a full budget
				l.Reset()
				if l.Remaining() != budget || l.NumRounds() != 0 || l.WastedTime() != 0 {
					t.Fatalf("trial %d: Reset left remaining=%v rounds=%d waste=%v",
						trial, l.Remaining(), l.NumRounds(), l.WastedTime())
				}
			case 1: // waste, sometimes invalid
				w := Uniform(rng, -2, 30)
				if rng.Intn(8) == 0 {
					w = math.NaN()
				}
				before := l.WastedTime()
				err := l.AddWaste(w)
				if w >= 0 && !math.IsNaN(w) {
					if err != nil {
						t.Fatalf("trial %d: AddWaste(%v): %v", trial, w, err)
					}
				} else if err == nil || l.WastedTime() != before {
					t.Fatalf("trial %d: invalid waste %v accepted (err=%v)", trial, w, err)
				}
			default: // commit a round; payments range over valid and invalid
				pay := Uniform(rng, -0.2, 0.6) * budget
				switch rng.Intn(12) {
				case 0:
					pay = math.NaN()
				case 1:
					pay = math.Inf(1)
				case 2:
					pay = l.Remaining() * Uniform(rng, 1, 3) // deliberate overdraft
				}
				n := 1 + rng.Intn(5)
				r := market.Round{
					Prices:       make([]float64, n),
					Freqs:        make([]float64, n),
					Times:        make([]float64, n),
					Payment:      pay,
					Accuracy:     rng.Float64(),
					Participants: n,
				}
				for i := 0; i < n; i++ {
					r.Times[i] = Uniform(rng, 0.1, 50)
				}
				remBefore, roundsBefore := l.Remaining(), l.NumRounds()
				err := l.Commit(r)
				valid := !math.IsNaN(pay) && !math.IsInf(pay, 0) && pay >= 0 && pay <= remBefore
				if valid {
					if err != nil {
						t.Fatalf("trial %d: Commit(payment=%v, remaining=%v): %v", trial, pay, remBefore, err)
					}
					if got := l.Remaining(); !approxEqual(got, remBefore-pay, tolExact) {
						t.Fatalf("trial %d: remaining %v after paying %v from %v", trial, got, pay, remBefore)
					}
				} else {
					if err == nil {
						t.Fatalf("trial %d: Commit accepted invalid payment %v (remaining %v)", trial, pay, remBefore)
					}
					if pay > remBefore && pay >= 0 && !math.IsNaN(pay) && !math.IsInf(pay, 0) &&
						!errors.Is(err, market.ErrBudgetExhausted) {
						t.Fatalf("trial %d: overdraft error %v, want ErrBudgetExhausted", trial, err)
					}
					if l.Remaining() != remBefore || l.NumRounds() != roundsBefore {
						t.Fatalf("trial %d: rejected commit mutated ledger", trial)
					}
				}
			}
			if err := CheckLedger(l); err != nil {
				t.Fatalf("trial %d after op %d: %v", trial, op, err)
			}
		}
	})
}

// TestRoundTimeLawsProperty checks T_k = max_i T_{i,k}, the Lemma 1
// idle-time sign, and the Eqn. (16) efficiency range on random per-node
// time vectors, including all-idle and single-participant shapes.
func TestRoundTimeLawsProperty(t *testing.T) {
	Trials(t, 202, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := 1 + rng.Intn(8)
		r := market.Round{Times: make([]float64, n)}
		for i := range r.Times {
			switch rng.Intn(3) {
			case 0: // declined
			case 1: // shared plateau — exercises the all-equal branch
				r.Times[i] = 10
			default:
				r.Times[i] = Uniform(rng, 0.01, 100)
			}
			if r.Times[i] > 0 {
				r.Participants++
			}
		}
		if err := CheckTimeLaws(&r); err != nil {
			t.Fatalf("trial %d, times %v: %v", trial, r.Times, err)
		}
	})
}
