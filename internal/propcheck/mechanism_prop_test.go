package propcheck

import (
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/mechanism"
	"chiron/internal/policy"
	"chiron/internal/rl"
)

// mechEnv builds a small faulted environment every mechanism runs against:
// a paper-distribution fleet under crash/straggle/drop/corrupt faults, a
// partial failure payment, a deadline, and a retry budget — so the
// failure-payment accounting and deadline laws get mechanism-level
// coverage, not just Step-level.
func mechEnv(t *testing.T, seed int64) *edgeenv.Env {
	t.Helper()
	const nodes = 4
	rng := rand.New(rand.NewSource(seed))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+1)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, 50)
	cfg.MaxRounds = 10
	sampler, err := faults.NewSampler(faults.Rates{Crash: 0.05, Straggle: 0.1, Drop: 0.05, Corrupt: 0.05}, seed+2)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	cfg.Faults = sampler
	cfg.FailurePayment = 0.25
	cfg.RoundDeadline = 300
	cfg.MaxRetries = 2
	cfg.RetryBackoff = 0.5
	env, err := edgeenv.New(cfg)
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

// smallPPO shrinks a PPO config to property-test scale: the laws under
// test do not depend on network capacity, only on the action plumbing.
func smallPPO(cfg rl.PPOConfig) rl.PPOConfig {
	cfg.Hidden = []int{8}
	cfg.UpdateEpochs = 3
	return cfg
}

// checkEpisode runs the full invariant catalogue against one finished
// episode of any mechanism.
func checkEpisode(t *testing.T, name string, env *edgeenv.Env, res mechanism.EpisodeResult, episode int) {
	t.Helper()
	if err := CheckEpisodeResult(env, res); err != nil {
		t.Fatalf("%s episode %d: %v", name, episode, err)
	}
	cfg := env.Config()
	maxTotal := env.MaxTotalPrice()
	for i := range env.Ledger().Rounds() {
		r := &env.Ledger().Rounds()[i]
		if err := CheckRoundAccounting(r, cfg.FailurePayment); err != nil {
			t.Fatalf("%s episode %d round %d: %v", name, episode, r.Index, err)
		}
		if err := CheckTimeLaws(r); err != nil {
			t.Fatalf("%s episode %d round %d: %v", name, episode, r.Index, err)
		}
		// Every mechanism prices within the feasible exterior action space:
		// non-negative per-node prices whose total respects the fleet's
		// saturation price (the a^E bound behind Eqn. 13).
		var sum float64
		for j, p := range r.Prices {
			if p < 0 {
				t.Fatalf("%s episode %d round %d: negative price %v for node %d",
					name, episode, r.Index, p, j)
			}
			sum += p
		}
		if sum > maxTotal*(1+tolLoose) {
			t.Fatalf("%s episode %d round %d: total price %v exceeds saturation %v",
				name, episode, r.Index, sum, maxTotal)
		}
	}
}

// TestMechanismInvariantsProperty runs ≥200 seeded episodes for Chiron and
// all four baselines on the faulted environment and checks the invariant
// catalogue after every episode. Learning mechanisms train throughout, so
// the laws are checked across the whole policy trajectory, not one frozen
// policy.
func TestMechanismInvariantsProperty(t *testing.T) {
	builders := []struct {
		name  string
		build func(t *testing.T, env *edgeenv.Env) mechanism.Mechanism
	}{
		{"Uniform", func(t *testing.T, env *edgeenv.Env) mechanism.Mechanism {
			m, err := baselines.NewUniform(env, 0.5)
			if err != nil {
				t.Fatalf("NewUniform: %v", err)
			}
			return m
		}},
		{"EqualTime", func(t *testing.T, env *edgeenv.Env) mechanism.Mechanism {
			m, err := baselines.NewEqualTime(env, 1.25*baselines.MinFeasibleTime(env))
			if err != nil {
				t.Fatalf("NewEqualTime: %v", err)
			}
			return m
		}},
		{"Greedy", func(t *testing.T, env *edgeenv.Env) mechanism.Mechanism {
			cfg := baselines.DefaultGreedyConfig()
			cfg.Seed = 11
			m, err := baselines.NewGreedy(env, cfg)
			if err != nil {
				t.Fatalf("NewGreedy: %v", err)
			}
			return m
		}},
		{"DRLBased", func(t *testing.T, env *edgeenv.Env) mechanism.Mechanism {
			cfg := baselines.DefaultDRLBasedConfig()
			cfg.PPO = smallPPO(cfg.PPO)
			cfg.Seed = 12
			m, err := baselines.NewDRLBased(env, cfg)
			if err != nil {
				t.Fatalf("NewDRLBased: %v", err)
			}
			return m
		}},
		{"Chiron", func(t *testing.T, env *edgeenv.Env) mechanism.Mechanism {
			cfg := core.DefaultConfig()
			cfg.Exterior = smallPPO(cfg.Exterior)
			cfg.Inner = smallPPO(cfg.Inner)
			cfg.Seed = 13
			m, err := core.New(env, cfg)
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			return m
		}},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			t.Parallel()
			env := mechEnv(t, 31)
			m := b.build(t, env)
			for episode := 0; episode < DefaultTrials; episode++ {
				res, err := m.RunEpisode(true)
				if err != nil {
					t.Fatalf("%s episode %d: %v", b.name, episode, err)
				}
				checkEpisode(t, b.name, env, res, episode)
			}
		})
	}
}

// TestSimplexDecompositionProperty checks the Eqn. (13) machinery
// directly: the inner agent's simplex projection always lands on the
// simplex, and scaling it by an exterior total reproduces per-node prices
// that exhaust the total.
func TestSimplexDecompositionProperty(t *testing.T) {
	Trials(t, 401, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := 2 + rng.Intn(10)
		raw := make([]float64, n)
		for i := range raw {
			raw[i] = Uniform(rng, -20, 20)
		}
		props, err := policy.SimplexProject(raw)
		if err != nil {
			t.Fatalf("trial %d: SimplexProject(%v): %v", trial, raw, err)
		}
		if err := CheckSimplex(props); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := Uniform(rng, 0, 100)
		prices := make([]float64, n)
		for i := range prices {
			prices[i] = total * props[i]
		}
		if err := CheckPriceDecomposition(total, props, prices); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	})
}
