package propcheck

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
)

var updateGolden = flag.Bool("update", false, "regenerate the agent-stack golden traces")

// agentStackEnv builds a clean (fault-free) environment for the action-trace
// goldens: the traces pin the *agent* stack — encoders, heads, RNG draw
// order, and update scheduling — so the environment stays at the paper's
// clean assumptions.
func agentStackEnv(t *testing.T, seed int64) *edgeenv.Env {
	t.Helper()
	const nodes = 3
	rng := rand.New(rand.NewSource(seed))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(seed+100)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, 150)
	cfg.MaxRounds = 30
	env, err := edgeenv.New(cfg)
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

// traceMechanism trains m for episodes episodes and renders every committed
// round's price vector as exact float64 bit patterns — the mechanism's full
// action sequence, robust to any internal refactoring because it is read
// from the environment ledger.
func traceMechanism(t *testing.T, m mechanism.Mechanism, episodes int, sb *strings.Builder) {
	t.Helper()
	tr, ok := m.(mechanism.Trainable)
	if !ok {
		t.Fatalf("%s is not trainable", m.Name())
	}
	_, err := tr.Train(episodes, func(res mechanism.EpisodeResult) {
		// The ledger still holds this episode's rounds until the next Reset.
		rounds := m.Env().Ledger().Rounds()
		fmt.Fprintf(sb, "episode %d rounds %d\n", res.Episode, len(rounds))
		for i := range rounds {
			r := &rounds[i]
			fmt.Fprintf(sb, "round %d", r.Index)
			for _, p := range r.Prices {
				fmt.Fprintf(sb, " %016x", math.Float64bits(p))
			}
			sb.WriteByte('\n')
		}
	})
	if err != nil {
		t.Fatalf("train %s: %v", m.Name(), err)
	}
}

// TestAgentStackGoldenTraces pins the byte-exact action sequences of the two
// PPO-driven mechanisms (Chiron and DRL-based) at seeds {1,2,3} against
// golden files recorded before the unified agent-stack refactor. Any change
// to state encoding, action squashing, RNG draw order, or update scheduling
// shifts at least one price by at least one ULP and fails the comparison.
// Regenerate with -update (only when a behavior change is intended).
func TestAgentStackGoldenTraces(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			var sb strings.Builder

			fmt.Fprintf(&sb, "mechanism Chiron seed %d\n", seed)
			ccfg := core.DefaultConfig()
			ccfg.Exterior = smallPPO(ccfg.Exterior)
			ccfg.Inner = smallPPO(ccfg.Inner)
			ccfg.MinUpdateSamples = 16
			ccfg.Seed = seed
			ch, err := core.New(agentStackEnv(t, seed), ccfg)
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			traceMechanism(t, ch, 4, &sb)

			fmt.Fprintf(&sb, "mechanism DRL-based seed %d\n", seed)
			dcfg := baselines.DefaultDRLBasedConfig()
			dcfg.PPO = smallPPO(dcfg.PPO)
			dcfg.Seed = seed
			drl, err := baselines.NewDRLBased(agentStackEnv(t, seed), dcfg)
			if err != nil {
				t.Fatalf("NewDRLBased: %v", err)
			}
			traceMechanism(t, drl, 4, &sb)

			got := sb.String()
			path := filepath.Join("testdata", fmt.Sprintf("agentstack_seed%d.golden", seed))
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("agent-stack trace diverged from pre-refactor golden %s\n"+
					"(a one-ULP price change anywhere in the action sequence fails this test;\n"+
					"regenerate with -update only if the behavior change is intended)", path)
			}
		})
	}
}
