package propcheck

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/baselines"
	"chiron/internal/core"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
)

// resumable is the full surface a checkpoint-resume digest needs.
type resumable interface {
	mechanism.Mechanism
	mechanism.Trainable
	mechanism.Checkpointer
}

// resumeEnv builds a noise-free environment for resume digests. The accuracy
// curve's measurement-noise RNG is environment state that checkpoints do not
// carry, so exact resume is only promised — and only tested — at NoiseStd=0
// (the preset curves all carry noise).
func resumeEnv(t *testing.T, seed int64) *edgeenv.Env {
	t.Helper()
	const nodes = 3
	rng := rand.New(rand.NewSource(seed))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewSurrogateCurve(rand.New(rand.NewSource(seed+100)), 0.95, 0.85, 25, 0, nodes)
	if err != nil {
		t.Fatalf("NewSurrogateCurve: %v", err)
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, 150)
	cfg.MaxRounds = 30
	env, err := edgeenv.New(cfg)
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

// TestResumeDigestsMatchUninterrupted trains each learnable mechanism for 3
// episodes, checkpoints, restores into a freshly constructed identically
// seeded mechanism, trains 3 more, and requires the concatenated action trace
// (exact float64 bit patterns of every committed price) to equal a single
// uninterrupted 6-episode run. This is the resume contract of the unified
// checkpoint: weights, Adam moments, carried rollout buffers, the episode
// counter, and the action-RNG position all survive the round trip.
func TestResumeDigestsMatchUninterrupted(t *testing.T) {
	const (
		seed       = int64(1)
		firstHalf  = 3
		secondHalf = 3
	)
	cases := []struct {
		name string
		make func(t *testing.T) resumable
	}{
		{"chiron", func(t *testing.T) resumable {
			cfg := core.DefaultConfig()
			cfg.Exterior = smallPPO(cfg.Exterior)
			cfg.Inner = smallPPO(cfg.Inner)
			// Larger than one episode's rounds, so the save point lands
			// mid-batch and the checkpoint must carry buffered experience.
			cfg.MinUpdateSamples = 48
			cfg.Seed = seed
			ch, err := core.New(resumeEnv(t, seed), cfg)
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			return ch
		}},
		{"drl-based", func(t *testing.T) resumable {
			cfg := baselines.DefaultDRLBasedConfig()
			cfg.PPO = smallPPO(cfg.PPO)
			cfg.Seed = seed
			d, err := baselines.NewDRLBased(resumeEnv(t, seed), cfg)
			if err != nil {
				t.Fatalf("NewDRLBased: %v", err)
			}
			return d
		}},
		{"greedy", func(t *testing.T) resumable {
			cfg := baselines.DefaultGreedyConfig()
			cfg.Epsilon = 0.5 // explore often so resume exercises the ε stream
			cfg.Seed = seed
			g, err := baselines.NewGreedy(resumeEnv(t, seed), cfg)
			if err != nil {
				t.Fatalf("NewGreedy: %v", err)
			}
			return g
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()

			var uninterrupted strings.Builder
			full := tc.make(t)
			traceMechanism(t, full, firstHalf+secondHalf, &uninterrupted)

			var resumed strings.Builder
			first := tc.make(t)
			traceMechanism(t, first, firstHalf, &resumed)
			path := filepath.Join(t.TempDir(), "resume.json")
			if err := first.SaveCheckpoint(path); err != nil {
				t.Fatalf("SaveCheckpoint: %v", err)
			}

			second := tc.make(t)
			if err := second.LoadCheckpoint(path); err != nil {
				t.Fatalf("LoadCheckpoint: %v", err)
			}
			if second.Episode() != firstHalf {
				t.Fatalf("restored episode counter %d, want %d", second.Episode(), firstHalf)
			}
			traceMechanism(t, second, secondHalf, &resumed)

			if resumed.String() != uninterrupted.String() {
				t.Fatalf("resumed action trace diverged from the uninterrupted run\n"+
					"(any one-ULP price difference after restore fails this digest)\n%s",
					firstDiff(resumed.String(), uninterrupted.String()))
			}
		})
	}
}

// firstDiff renders the first differing line of two traces for the failure
// message.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  resumed:       %s\n  uninterrupted: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("traces differ in length: %d vs %d lines", len(al), len(bl))
}
