package propcheck

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/policy"
)

// The struct-of-arrays bit-identity properties: every batched fleet kernel
// must reproduce the per-node scalar path to the last bit — not "close",
// identical — over random fleets, price regimes, churned/absent nodes, and
// fault schedules. This is the contract that lets the round pipeline swap
// layouts and shard the node axis without perturbing a single golden
// trace.

// TestBatchBestResponseBitIdentity checks the vectorized Eqn. (11) best
// response (interior optimum, box clip, Eqn. (8) reserve screen, realized
// payment/time/energy) against Node.BestResponseWithComm element by
// element, including declined, negatively-priced, and mask-ineligible
// nodes.
func TestBatchBestResponseBitIdentity(t *testing.T) {
	Trials(t, 701, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := 2 + rng.Intn(39)
		nodes := RandomFleet(rng, n)
		fleet := device.FromNodes(nodes)
		prices := make([]float64, n)
		comm := make([]float64, n)
		var eligible []bool
		if rng.Intn(2) == 0 {
			eligible = make([]bool, n)
			for i := range eligible {
				eligible[i] = rng.Intn(4) > 0
			}
		}
		for i := 0; i < n; i++ {
			sat := nodes[i].PriceForFreq(nodes[i].FreqMax)
			// Span decline, starvation, interior, both clip branches, and
			// overshoot; occasionally a negative comm time to hit the guard.
			prices[i] = Uniform(rng, -0.3, 2.5) * sat
			comm[i] = Uniform(rng, -0.1, 1.5) * (nodes[i].CommTime + 1)
		}
		out := device.BatchResponse{Util: []float64{}, Energy: []float64{}}
		out.Resize(n)
		fleet.BestResponseRange(0, n, prices, comm, eligible, &out)
		for i := 0; i < n; i++ {
			want := nodes[i].BestResponseWithComm(prices[i], comm[i])
			if eligible != nil && !eligible[i] {
				want = device.Response{}
			}
			if out.Joined[i] != want.Participating || out.Freq[i] != want.Freq ||
				out.Time[i] != want.Time || out.Payment[i] != want.Payment ||
				out.Util[i] != want.Utility || out.Energy[i] != want.Energy {
				t.Fatalf("trial %d node %d: batch (join=%v ζ=%b T=%b pay=%b u=%b E=%b) != scalar %+v",
					trial, i, out.Joined[i], out.Freq[i], out.Time[i],
					out.Payment[i], out.Util[i], out.Energy[i], want)
			}
		}
	})
}

// TestBatchColumnsBitIdentity checks the Eqn. (12)/(8) column kernels —
// compute time and utility — against the scalar methods, including the
// +Inf branch for stalled frequencies.
func TestBatchColumnsBitIdentity(t *testing.T) {
	Trials(t, 702, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := 2 + rng.Intn(30)
		nodes := RandomFleet(rng, n)
		fleet := device.FromNodes(nodes)
		freqs := make([]float64, n)
		prices := make([]float64, n)
		ct := make([]float64, n)
		ut := make([]float64, n)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0:
				freqs[i] = 0 // +Inf compute time
			default:
				freqs[i] = Uniform(rng, 0.5, 1.5) * nodes[i].FreqMax
			}
			prices[i] = Uniform(rng, 0, 2) * nodes[i].PriceForFreq(nodes[i].FreqMax)
		}
		fleet.ComputeTimeColumn(0, n, freqs, ct)
		fleet.UtilityColumn(0, n, prices, freqs, ut)
		for i := 0; i < n; i++ {
			if want := nodes[i].ComputeTime(freqs[i]); ct[i] != want && !(math.IsInf(ct[i], 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d node %d: compute time %b != %b", trial, i, ct[i], want)
			}
			if want := nodes[i].Utility(prices[i], freqs[i]); ut[i] != want {
				t.Fatalf("trial %d node %d: utility %b != %b", trial, i, ut[i], want)
			}
		}
	})
}

// TestBatchSimplexSplitBitIdentity checks the destination-passing Eqn. (13)
// price decomposition against the allocating head: identical bits, a valid
// simplex, and an exact total·share decomposition.
func TestBatchSimplexSplitBitIdentity(t *testing.T) {
	Trials(t, 703, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		n := 1 + rng.Intn(40)
		u := make([]float64, n)
		for i := range u {
			u[i] = Uniform(rng, -8, 8)
		}
		total := Uniform(rng, 0.01, 50)
		var head policy.SimplexHead
		want, err := head.Prices(total, u)
		if err != nil {
			t.Fatalf("trial %d: Prices: %v", trial, err)
		}
		dst := make([]float64, n)
		// Poison dst to prove full overwrite.
		for i := range dst {
			dst[i] = math.NaN()
		}
		if err := head.PricesTo(dst, total, u); err != nil {
			t.Fatalf("trial %d: PricesTo: %v", trial, err)
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("trial %d node %d: PricesTo %b != Prices %b", trial, i, dst[i], want[i])
			}
		}
		props, err := head.Proportions(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckSimplex(props); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckPriceDecomposition(total, props, dst); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	})
}

// twinEnvs draws one random environment twice: once on the vector-record
// per-node path (Nodes) and once on the compact struct-of-arrays path
// (Fleet only, CompactRounds), with independently seeded but identical
// accuracy models, churn/fault schedules, and draw RNGs. The pair is the
// fixture for the full-round bit-identity property.
func twinEnvs(rng *rand.Rand) (vec, compact *edgeenv.Env, err error) {
	n := 2 + rng.Intn(15)
	nodes := RandomFleet(rng, n)
	accSeed := rng.Int63()
	presets := []accuracy.Preset{accuracy.PresetMNIST, accuracy.PresetFashion, accuracy.PresetCIFAR}
	preset := presets[rng.Intn(len(presets))]

	base := edgeenv.DefaultConfig(nodes, nil, Uniform(rng, 30, 400))
	base.Lambda = Uniform(rng, 100, 4000)
	base.TimeWeight = Uniform(rng, 0, 1.5)
	base.MaxRounds = 6 + rng.Intn(20)
	base.EmptyRoundTimeout = Uniform(rng, 5, 80)
	if rng.Intn(2) == 0 {
		base.CommJitter = Uniform(rng, 0, 0.4)
	}
	if rng.Intn(3) == 0 {
		base.Availability = Uniform(rng, 0.5, 1)
	}
	drawSeed := rng.Int63()
	var faultSeed int64
	rates := RandomRates(rng)
	if rates.Any() {
		faultSeed = rng.Int63()
	}
	if rng.Intn(2) == 0 {
		base.RoundDeadline = Uniform(rng, 10, 400)
	}
	base.MaxRetries = rng.Intn(4)
	base.RetryBackoff = Uniform(rng, 0, 3)
	base.FailurePayment = Uniform(rng, 0, 1)
	base.MinQuorum = rng.Intn(n + 1)
	churnOn := rng.Intn(2) == 0
	churnRates := faults.ChurnRates{
		Depart: Uniform(rng, 0, 0.3),
		Arrive: Uniform(rng, 0.2, 0.9),
	}
	churnSeed := rng.Int63()

	build := func(useFleet bool) (*edgeenv.Env, error) {
		cfg := base
		if useFleet {
			cfg.Nodes = nil
			cfg.Fleet = device.FromNodes(nodes)
			cfg.CompactRounds = true
		}
		acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(accSeed)), preset, n)
		if err != nil {
			return nil, err
		}
		cfg.Accuracy = acc
		if cfg.CommJitter > 0 || (cfg.Availability > 0 && cfg.Availability < 1) {
			cfg.Rng = rand.New(rand.NewSource(drawSeed))
		}
		if rates.Any() {
			sampler, err := faults.NewSampler(rates, faultSeed)
			if err != nil {
				return nil, err
			}
			cfg.Faults = sampler
		}
		if churnOn {
			churn, err := faults.NewChurnSampler(churnRates, churnSeed)
			if err != nil {
				return nil, err
			}
			cfg.Churn = churn
		}
		return edgeenv.New(cfg)
	}
	if vec, err = build(false); err != nil {
		return nil, nil, err
	}
	if compact, err = build(true); err != nil {
		return nil, nil, err
	}
	return vec, compact, nil
}

// TestCompactEpisodeBitIdentity is the full-round property: a compact
// struct-of-arrays episode reproduces the vector-record episode's
// committed aggregates under random fleets, churn, availability, jitter,
// faults, deadlines, retries, failure payments, and quorums. Payments,
// accuracies, round times, and efficiencies must match exactly; only the
// idle-time sum — streamed as N·T_k − ΣT_i instead of Σ(T_k−T_i) — is
// allowed float-reassociation slack.
func TestCompactEpisodeBitIdentity(t *testing.T) {
	Trials(t, 704, DefaultTrials, func(t *testing.T, rng *rand.Rand, trial int) {
		vec, compact, err := twinEnvs(rng)
		if err != nil {
			t.Fatalf("trial %d: twin envs: %v", trial, err)
		}
		if err := vec.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := compact.Reset(); err != nil {
			t.Fatal(err)
		}
		for k := 0; !vec.Done(); k++ {
			prices := RandomPrices(rng, vec)
			rv, err := vec.Step(prices)
			if err != nil {
				t.Fatalf("trial %d round %d: vector step: %v", trial, k, err)
			}
			rc, err := compact.Step(prices)
			if err != nil {
				t.Fatalf("trial %d round %d: compact step: %v", trial, k, err)
			}
			switch {
			case rv.Done != rc.Done || rv.Truncated != rc.Truncated:
				t.Fatalf("trial %d round %d: termination (%v,%v) != (%v,%v)",
					trial, k, rc.Done, rc.Truncated, rv.Done, rv.Truncated)
			case rv.Round.Payment != rc.Round.Payment:
				t.Fatalf("trial %d round %d: payment %b != %b", trial, k, rc.Round.Payment, rv.Round.Payment)
			case rv.Round.Accuracy != rc.Round.Accuracy:
				t.Fatalf("trial %d round %d: accuracy %b != %b", trial, k, rc.Round.Accuracy, rv.Round.Accuracy)
			case rv.Round.Participants != rc.Round.Participants || rv.Round.Completed != rc.Round.Completed:
				t.Fatalf("trial %d round %d: participants %d/%d != %d/%d", trial, k,
					rc.Round.Participants, rc.Round.Completed, rv.Round.Participants, rv.Round.Completed)
			case rv.Round.RoundTime() != rc.Round.RoundTime():
				t.Fatalf("trial %d round %d: round time %b != %b", trial, k, rc.Round.RoundTime(), rv.Round.RoundTime())
			case rv.Round.TimeEfficiency() != rc.Round.TimeEfficiency():
				t.Fatalf("trial %d round %d: efficiency %b != %b", trial, k,
					rc.Round.TimeEfficiency(), rv.Round.TimeEfficiency())
			case rv.ExteriorReward != rc.ExteriorReward:
				t.Fatalf("trial %d round %d: exterior reward %b != %b", trial, k, rc.ExteriorReward, rv.ExteriorReward)
			}
			scale := math.Max(1, math.Abs(rv.InnerReward))
			if math.Abs(rv.InnerReward-rc.InnerReward) > 1e-9*scale {
				t.Fatalf("trial %d round %d: inner reward %v != %v", trial, k, rc.InnerReward, rv.InnerReward)
			}
		}
		if !compact.Done() {
			t.Fatalf("trial %d: compact episode outlived vector episode", trial)
		}
		if vec.Ledger().TotalSpent() != compact.Ledger().TotalSpent() ||
			vec.Ledger().NumRounds() != compact.Ledger().NumRounds() ||
			vec.Ledger().TotalTime() != compact.Ledger().TotalTime() {
			t.Fatalf("trial %d: ledgers diverged", trial)
		}
	})
}
