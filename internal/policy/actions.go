// Package policy is the shared agent stack of the reproduction: composable
// observation encoders that turn environment state into network inputs, and
// action heads that turn unbounded pre-squash network outputs into feasible
// environment actions (price vectors). Every mechanism — Chiron's
// hierarchical pair, the DRL-based baseline, Greedy's replay strategy, and
// the static references — assembles its decision path from these parts, so
// adding a mechanism means composing encoders and heads, not re-implementing
// state layout or action squashing.
package policy

import (
	"fmt"
	"math"

	"chiron/internal/mat"
)

// Squash maps an unbounded pre-squash value into (lo, hi) via a sigmoid —
// the bounded-action transform of the per-node price heads.
func Squash(u, lo, hi float64) float64 {
	return lo + (hi-lo)/(1+math.Exp(-u))
}

// LogSquash maps an unbounded pre-squash value into [lo, hi] on a
// logarithmic scale: u=0 lands on the geometric mean √(lo·hi). Prices span
// orders of magnitude, so the log parametrization gives the policy equal
// resolution across the whole range and starts exploration near the middle
// of the *multiplicative* range instead of half the maximum. lo must be
// positive.
func LogSquash(u, lo, hi float64) float64 {
	logLo, logHi := math.Log(lo), math.Log(hi)
	return math.Exp(logLo + (logHi-logLo)/(1+math.Exp(-u)))
}

// SquashVec applies Squash elementwise, returning a new slice.
func SquashVec(u []float64, lo, hi float64) []float64 {
	out := make([]float64, len(u))
	SquashVecTo(out, u, lo, hi)
	return out
}

// SquashVecTo applies Squash elementwise into dst (length len(u)) — the
// destination-passing form hot rollout loops use to keep per-round action
// transforms allocation-free at fleet scale.
func SquashVecTo(dst, u []float64, lo, hi float64) error {
	if len(dst) != len(u) {
		return fmt.Errorf("policy: squash dst len %d, src len %d", len(dst), len(u))
	}
	for i, v := range u {
		dst[i] = Squash(v, lo, hi)
	}
	return nil
}

// Clip bounds v to [lo, hi].
func Clip(v, lo, hi float64) float64 {
	return mat.Clamp(v, lo, hi)
}

// SimplexProject maps an unbounded pre-squash vector onto the probability
// simplex via softmax — the transform behind the Eqn. 13 allocation
// proportions.
func SimplexProject(u []float64) ([]float64, error) {
	out, err := mat.Softmax(nil, u)
	if err != nil {
		return nil, fmt.Errorf("policy: simplex project: %w", err)
	}
	return out, nil
}

// SimplexProjectTo is SimplexProject writing into a caller-supplied dst
// (length len(u)); dst may alias u. It allocates nothing.
func SimplexProjectTo(dst, u []float64) error {
	if _, err := mat.Softmax(dst, u); err != nil {
		return fmt.Errorf("policy: simplex project: %w", err)
	}
	return nil
}
