package policy

import (
	"fmt"
	"math/rand"

	"chiron/internal/mat"
)

// emaKeep/emaNew weight the old and new scores when re-scoring a tried
// action; the exponential moving average keeps scores current as the
// accuracy curve's marginal returns shrink. Both are literals (not 1−emaKeep)
// so the arithmetic is bit-identical to the pre-refactor traces.
const (
	emaKeep = 0.9
	emaNew  = 0.1
)

// ScoredAction is one replay entry: a price vector with its observed
// per-round reward score. Fields are exported for checkpoint serialization.
type ScoredAction struct {
	Prices []float64 `json:"prices"`
	Reward float64   `json:"reward"`
	Tried  bool      `json:"tried"`
}

// ReplayHead is the ε-greedy action head behind the Greedy baseline: a
// growing buffer of scored price vectors, replaying the best-scoring one
// with probability 1−ε and exploring a new random action with probability ε.
type ReplayHead struct {
	epsilon float64
	actions []ScoredAction
}

// NewReplayHead builds an empty head with exploration probability epsilon.
func NewReplayHead(epsilon float64) (*ReplayHead, error) {
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("policy: replay epsilon %v outside [0,1]", epsilon)
	}
	return &ReplayHead{epsilon: epsilon}, nil
}

// Seed appends an untried warmup action (cloned).
func (h *ReplayHead) Seed(prices []float64) {
	h.actions = append(h.actions, ScoredAction{Prices: mat.CloneVec(prices)})
}

// Len reports the replay-buffer length (grows with exploration).
func (h *ReplayHead) Len() int { return len(h.actions) }

// bestIndex returns the index of the highest-reward tried action, or a
// random untried one when nothing has been scored yet.
func (h *ReplayHead) bestIndex(rng *rand.Rand) int {
	best := -1
	for i := range h.actions {
		if !h.actions[i].Tried {
			continue
		}
		if best == -1 || h.actions[i].Reward > h.actions[best].Reward {
			best = i
		}
	}
	if best == -1 {
		return rng.Intn(len(h.actions))
	}
	return best
}

// Select picks the round's action index: the best known action, or — when
// training — a fresh exploration action from explore with probability ε.
// The RNG draw order (best-index tiebreak first, then the ε coin) is part
// of the head's contract; golden traces pin it.
func (h *ReplayHead) Select(rng *rand.Rand, train bool, explore func() []float64) int {
	idx := h.bestIndex(rng)
	if train && rng.Float64() < h.epsilon {
		h.actions = append(h.actions, ScoredAction{Prices: explore()})
		idx = len(h.actions) - 1
	}
	return idx
}

// Prices returns a caller-owned copy of action idx's price vector.
func (h *ReplayHead) Prices(idx int) []float64 {
	return mat.CloneVec(h.actions[idx].Prices)
}

// Score folds one observed reward into action idx: first observation sets
// the score, later ones fold in with an exponential moving average.
func (h *ReplayHead) Score(idx int, reward float64) {
	e := &h.actions[idx]
	if !e.Tried {
		e.Tried = true
		e.Reward = reward
		return
	}
	e.Reward = emaKeep*e.Reward + emaNew*reward
}

// Snapshot returns a deep copy of the replay buffer for checkpointing.
func (h *ReplayHead) Snapshot() []ScoredAction {
	out := make([]ScoredAction, len(h.actions))
	for i, a := range h.actions {
		out[i] = ScoredAction{Prices: mat.CloneVec(a.Prices), Reward: a.Reward, Tried: a.Tried}
	}
	return out
}

// Restore replaces the replay buffer with a deep copy of actions.
func (h *ReplayHead) Restore(actions []ScoredAction) error {
	if len(actions) == 0 {
		return fmt.Errorf("policy: replay restore with no actions")
	}
	h.actions = make([]ScoredAction, len(actions))
	for i, a := range actions {
		if len(a.Prices) == 0 {
			return fmt.Errorf("policy: replay restore action %d has no prices", i)
		}
		h.actions[i] = ScoredAction{Prices: mat.CloneVec(a.Prices), Reward: a.Reward, Tried: a.Tried}
	}
	return nil
}
