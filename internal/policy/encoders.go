package policy

import (
	"fmt"

	"chiron/internal/edgeenv"
	"chiron/internal/mat"
)

// An Encoder renders one feature block of an agent observation into a
// caller-provided slice. Encoders are pure functions of the environment —
// they never draw randomness — so re-encoding the same environment state is
// bit-identical, which is what lets every mechanism re-derive its
// observation on demand instead of threading state slices around.
type Encoder interface {
	// Dim is the block's feature count.
	Dim() int
	// EncodeTo fills dst (length Dim) with the block's current features.
	EncodeTo(dst []float64)
}

// HistoryEncoder renders the windowed round history of the paper's exterior
// state s^E_k: the most recent L rounds of {ζ, p, T} per node, oldest slot
// first, zero-padded before round L. All values are normalized by the
// fleet's saturation constants to keep the policy network well conditioned.
type HistoryEncoder struct {
	env                           *edgeenv.Env
	nodes, window                 int
	freqNorm, priceNorm, timeNorm float64
}

// NewHistoryEncoder builds the encoder over env's ledger and fleet norms.
func NewHistoryEncoder(env *edgeenv.Env) *HistoryEncoder {
	fn, pn, tn := env.Norms()
	return &HistoryEncoder{
		env:       env,
		nodes:     env.NumNodes(),
		window:    env.Config().HistoryLen,
		freqNorm:  fn,
		priceNorm: pn,
		timeNorm:  tn,
	}
}

// Dim implements Encoder: 3·N·L history values.
func (h *HistoryEncoder) Dim() int { return 3 * h.nodes * h.window }

// EncodeTo implements Encoder.
//
// The node axis is clamped per round record: a record narrower than the
// fleet (a round played while churn had shrunk the roster, or a legacy
// trace) contributes zeros for the missing tail instead of panicking, so
// the observation shape stays fixed while the fleet varies. Compact
// (fleet-scale aggregate) records carry no per-node vectors and encode as
// all-zero slots — fleet-scale mechanisms condition on aggregate encoders
// instead.
//
// Each {ζ, p, T} block streams through the destination-passing
// mat.DivScalarVecTo kernel — a true per-element division, so the encoding
// is bit-identical to the scalar loop it replaces.
func (h *HistoryEncoder) EncodeTo(dst []float64) {
	mat.FillVec(dst, 0)
	rounds := h.env.Ledger().Rounds()
	n := h.nodes
	for slot := 0; slot < h.window; slot++ {
		idx := len(rounds) - h.window + slot
		if idx < 0 {
			continue
		}
		r := &rounds[idx]
		base := slot * 3 * n
		m := n
		for _, l := range []int{len(r.Freqs), len(r.Prices), len(r.Times)} {
			if l < m {
				m = l
			}
		}
		if m == 0 {
			continue
		}
		mat.DivScalarVecTo(dst[base:base+m], r.Freqs[:m], h.freqNorm)
		mat.DivScalarVecTo(dst[base+n:base+n+m], r.Prices[:m], h.priceNorm)
		mat.DivScalarVecTo(dst[base+2*n:base+2*n+m], r.Times[:m], h.timeNorm)
	}
}

// BudgetRoundEncoder renders the two long-term features that distinguish
// Chiron's exterior state from the myopic baselines: the remaining budget
// fraction and the normalized round index.
type BudgetRoundEncoder struct {
	env *edgeenv.Env
}

// NewBudgetRoundEncoder builds the encoder over env's ledger.
func NewBudgetRoundEncoder(env *edgeenv.Env) *BudgetRoundEncoder {
	return &BudgetRoundEncoder{env: env}
}

// Dim implements Encoder.
func (b *BudgetRoundEncoder) Dim() int { return 2 }

// EncodeTo implements Encoder.
func (b *BudgetRoundEncoder) EncodeTo(dst []float64) {
	ledger := b.env.Ledger()
	dst[0] = ledger.Remaining() / ledger.Budget()
	dst[1] = float64(b.env.Round()) / float64(b.env.Config().MaxRounds)
}

// Concat composes encoders into one observation vector, each block laid out
// in order.
type Concat struct {
	parts []Encoder
	dim   int
}

// NewConcat composes the given encoder blocks.
func NewConcat(parts ...Encoder) (*Concat, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("policy: concat of no encoders")
	}
	c := &Concat{parts: parts}
	for _, p := range parts {
		c.dim += p.Dim()
	}
	return c, nil
}

// Dim implements Encoder.
func (c *Concat) Dim() int { return c.dim }

// EncodeTo implements Encoder.
func (c *Concat) EncodeTo(dst []float64) {
	off := 0
	for _, p := range c.parts {
		p.EncodeTo(dst[off : off+p.Dim()])
		off += p.Dim()
	}
}

// State encodes the observation into a fresh slice the caller owns — the
// form rollout buffers store.
func (c *Concat) State() []float64 {
	dst := make([]float64, c.dim)
	c.EncodeTo(dst)
	return dst
}

// NewExteriorEncoder composes the paper's full exterior observation
// s^E_k = [history window | budget fraction, round index].
func NewExteriorEncoder(env *edgeenv.Env) (*Concat, error) {
	return NewConcat(NewHistoryEncoder(env), NewBudgetRoundEncoder(env))
}

// NewMyopicEncoder composes the DRL-based baseline's observation: the
// history window only, with the two long-term entries deliberately absent —
// the defining difference from Chiron's exterior agent.
func NewMyopicEncoder(env *edgeenv.Env) (*Concat, error) {
	return NewConcat(NewHistoryEncoder(env))
}

// PresenceEncoder renders the fleet-membership mask of the environment's
// churn schedule: one feature per node, 1 when the node is in the
// recruitment pool at the upcoming round's Offer stage (a node departing
// mid-round is still present at the Offer, so it encodes 1). Without a
// churn schedule every node reads 1, so the block is constant — which is
// why it is opt-in via NewChurnAwareEncoder rather than part of
// NewExteriorEncoder: adding it there would change the observation
// dimension every existing checkpoint and golden trace pins.
type PresenceEncoder struct {
	env   *edgeenv.Env
	nodes int
}

// NewPresenceEncoder builds the encoder over env's churn schedule.
func NewPresenceEncoder(env *edgeenv.Env) *PresenceEncoder {
	return &PresenceEncoder{env: env, nodes: env.NumNodes()}
}

// Dim implements Encoder: one presence bit per node.
func (p *PresenceEncoder) Dim() int { return p.nodes }

// EncodeTo implements Encoder.
func (p *PresenceEncoder) EncodeTo(dst []float64) {
	churn := p.env.Config().Churn
	round := p.env.Round()
	for i := 0; i < p.nodes; i++ {
		dst[i] = 1
		if churn != nil {
			if present, _ := churn.Membership(round, i); !present {
				dst[i] = 0
			}
		}
	}
}

// NewChurnAwareEncoder composes the churn-extended exterior observation
// s^E_k = [history window | presence mask | budget fraction, round index]:
// the varying node axis is exposed to the policy as an explicit mask over
// a fixed-width layout, so network shapes (and checkpoints) stay valid as
// nodes come and go.
func NewChurnAwareEncoder(env *edgeenv.Env) (*Concat, error) {
	return NewConcat(NewHistoryEncoder(env), NewPresenceEncoder(env), NewBudgetRoundEncoder(env))
}

// ConditioningEncoder renders the exterior action as the inner agent's
// observation (the hierarchy of Fig. 2): the chosen total price normalized
// by the fleet's saturation price.
type ConditioningEncoder struct {
	maxTotal float64
}

// NewConditioningEncoder builds the encoder for env's action scale.
func NewConditioningEncoder(env *edgeenv.Env) ConditioningEncoder {
	return ConditioningEncoder{maxTotal: env.MaxTotalPrice()}
}

// Dim is the conditioning feature count.
func (ConditioningEncoder) Dim() int { return 1 }

// State encodes the exterior total price into a fresh slice.
func (e ConditioningEncoder) State(total float64) []float64 {
	return []float64{total / e.maxTotal}
}

// EncodeTotal writes the conditioning feature into dst[0] — the
// allocation-free form of State the batched evaluator stages rows with.
func (e ConditioningEncoder) EncodeTotal(dst []float64, total float64) {
	dst[0] = total / e.maxTotal
}
