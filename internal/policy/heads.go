package policy

import (
	"fmt"

	"chiron/internal/mat"
)

// BoundedScalarHead maps a one-dimensional pre-squash action to a total
// price in [Lo, Hi] on a log scale — the Eqn. 13 exterior head. Lo must be
// positive (see LogSquash).
type BoundedScalarHead struct {
	Lo, Hi float64
}

// Total maps the pre-squash action to the round's total price p_total,k.
func (h BoundedScalarHead) Total(u float64) float64 {
	return LogSquash(u, h.Lo, h.Hi)
}

// TotalBatch maps a column of pre-squash actions (one row per batched
// decision, acts.Cols() == 1) into dst, element for element the same
// arithmetic as Total — the batched evaluator's exterior head.
func (h BoundedScalarHead) TotalBatch(dst []float64, acts *mat.Matrix) error {
	if acts.Cols() != 1 || acts.Rows() != len(dst) {
		return fmt.Errorf("policy: total batch %dx%d into %d", acts.Rows(), acts.Cols(), len(dst))
	}
	for i := range dst {
		dst[i] = h.Total(acts.At(i, 0))
	}
	return nil
}

// SimplexHead maps a pre-squash action vector to allocation proportions on
// the simplex and scales them by a total price — the Eqn. 13 inner head:
// p_{i,k} = a^E_k · a^I_{i,k}.
type SimplexHead struct{}

// Proportions projects the pre-squash vector onto the simplex.
func (SimplexHead) Proportions(u []float64) ([]float64, error) {
	return SimplexProject(u)
}

// Prices decomposes a total price across nodes via the simplex projection.
func (h SimplexHead) Prices(total float64, u []float64) ([]float64, error) {
	props, err := h.Proportions(u)
	if err != nil {
		return nil, err
	}
	for i, pr := range props {
		props[i] = total * pr
	}
	return props, nil
}

// PricesTo is Prices writing into a caller-supplied dst (length len(u));
// dst may alias u. The arithmetic matches Prices element for element
// (softmax then total·proportion), so reusing a price buffer across rounds
// changes nothing but the allocation count.
func (h SimplexHead) PricesTo(dst []float64, total float64, u []float64) error {
	if err := SimplexProjectTo(dst, u); err != nil {
		return err
	}
	for i, pr := range dst {
		dst[i] = total * pr
	}
	return nil
}

// PricesBatch decomposes one total price per row: row i of dst becomes
// Prices(totals[i], acts.Row(i)). Rows are independent and each matches the
// scalar path element for element, so batching decisions across hosted
// episodes changes no price bit. dst may alias acts.
func (h SimplexHead) PricesBatch(dst *mat.Matrix, totals []float64, acts *mat.Matrix) error {
	if dst.Rows() != acts.Rows() || dst.Cols() != acts.Cols() || len(totals) != acts.Rows() {
		return fmt.Errorf("policy: prices batch dst %dx%d totals %d acts %dx%d",
			dst.Rows(), dst.Cols(), len(totals), acts.Rows(), acts.Cols())
	}
	for i, total := range totals {
		if err := h.PricesTo(dst.Row(i), total, acts.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

// BoundedVectorHead maps each pre-squash component independently into
// [Lo, Hi] — the DRL-based baseline's per-node price head, whose action
// square covers the same feasible region as the total-price simplex.
type BoundedVectorHead struct {
	Lo, Hi float64
}

// Prices maps the pre-squash vector to per-node prices.
func (h BoundedVectorHead) Prices(u []float64) []float64 {
	return SquashVec(u, h.Lo, h.Hi)
}

// PricesTo is Prices writing into a caller-supplied dst (length len(u));
// dst may alias u. It allocates nothing.
func (h BoundedVectorHead) PricesTo(dst, u []float64) error {
	return SquashVecTo(dst, u, h.Lo, h.Hi)
}

// StaticHead posts the same price vector every round — the head behind the
// static references (Uniform, EqualTime), which run through the same driver
// as the learners but have no pre-squash action to transform.
type StaticHead struct {
	prices []float64
}

// NewStaticHead fixes the head's price vector (cloned).
func NewStaticHead(prices []float64) (*StaticHead, error) {
	if len(prices) == 0 {
		return nil, fmt.Errorf("policy: static head with no prices")
	}
	return &StaticHead{prices: mat.CloneVec(prices)}, nil
}

// Prices returns the fixed vector. Callers must not mutate it.
func (h *StaticHead) Prices() []float64 { return h.prices }
