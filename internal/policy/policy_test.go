package policy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/faults"
	"chiron/internal/market"
)

func testEnv(t *testing.T, nodes int, budget float64) *edgeenv.Env {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	env, err := edgeenv.New(edgeenv.DefaultConfig(fleet, acc, budget))
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

// fullPrices returns a price vector driving every node near its max.
func fullPrices(env *edgeenv.Env) []float64 {
	prices := make([]float64, env.NumNodes())
	for i, n := range env.Nodes() {
		prices[i] = n.PriceForFreq(n.FreqMax)
	}
	return prices
}

// ---------------------------------------------------------------------------
// Action transforms.

func TestSquash(t *testing.T) {
	if got := Squash(0, 0, 10); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Squash(0) = %v, want 5", got)
	}
	if got := Squash(100, 2, 8); math.Abs(got-8) > 1e-6 {
		t.Fatalf("Squash(+inf-ish) = %v, want 8", got)
	}
	if got := Squash(-100, 2, 8); math.Abs(got-2) > 1e-6 {
		t.Fatalf("Squash(-inf-ish) = %v, want 2", got)
	}
	v := SquashVec([]float64{-100, 0, 100}, 0, 1)
	if v[0] > 0.001 || math.Abs(v[1]-0.5) > 1e-12 || v[2] < 0.999 {
		t.Fatalf("SquashVec = %v", v)
	}
}

// Property: Squash always lands strictly inside (lo, hi) for finite input
// and is monotone.
func TestSquashProperty(t *testing.T) {
	f := func(u1, u2 float64) bool {
		if math.IsNaN(u1) || math.IsNaN(u2) || math.Abs(u1) > 500 || math.Abs(u2) > 500 {
			return true
		}
		lo, hi := 1.0, 4.0
		a, b := Squash(u1, lo, hi), Squash(u2, lo, hi)
		if a < lo || a > hi || b < lo || b > hi {
			return false
		}
		if u1 < u2 && a > b {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSquashBoundsAndMidpoint(t *testing.T) {
	lo, hi := 0.01, 100.0
	if got := LogSquash(100, lo, hi); math.Abs(got-hi) > 1e-6*hi {
		t.Fatalf("LogSquash(+inf-ish) = %v, want %v", got, hi)
	}
	if got := LogSquash(-100, lo, hi); math.Abs(got-lo) > 1e-6 {
		t.Fatalf("LogSquash(-inf-ish) = %v, want %v", got, lo)
	}
	// u=0 lands at the geometric middle of the range.
	if got, want := LogSquash(0, lo, hi), math.Sqrt(lo*hi); math.Abs(got-want) > 1e-9 {
		t.Fatalf("LogSquash(0) = %v, want geometric mean %v", got, want)
	}
}

func TestSimplexProject(t *testing.T) {
	props, err := SimplexProject([]float64{1, 2, 3})
	if err != nil {
		t.Fatalf("SimplexProject: %v", err)
	}
	var sum float64
	for _, p := range props {
		if p <= 0 {
			t.Fatalf("proportion %v <= 0", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("proportions sum to %v", sum)
	}
}

func TestClip(t *testing.T) {
	if Clip(5, 0, 1) != 1 || Clip(-5, 0, 1) != 0 || Clip(0.5, 0, 1) != 0.5 {
		t.Fatal("Clip wrong")
	}
}

// ---------------------------------------------------------------------------
// Encoders.

func TestExteriorEncoderDimAndFreshLayout(t *testing.T) {
	env := testEnv(t, 4, 100)
	obs, err := NewExteriorEncoder(env)
	if err != nil {
		t.Fatalf("NewExteriorEncoder: %v", err)
	}
	wantDim := 3*4*env.Config().HistoryLen + 2
	if obs.Dim() != wantDim {
		t.Fatalf("Dim = %d, want %d", obs.Dim(), wantDim)
	}
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	state := obs.State()
	if len(state) != wantDim {
		t.Fatalf("state len %d, want %d", len(state), wantDim)
	}
	// Fresh episode: zero history, full budget, round 1.
	for i := 0; i < wantDim-2; i++ {
		if state[i] != 0 {
			t.Fatalf("fresh history entry %d = %v, want 0", i, state[i])
		}
	}
	if state[wantDim-2] != 1 {
		t.Fatalf("budget fraction %v, want 1", state[wantDim-2])
	}
}

func TestHistoryEncoderEncodesNewestSlotLast(t *testing.T) {
	env := testEnv(t, 2, 1000)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, err := env.Step(fullPrices(env)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	h := NewHistoryEncoder(env)
	state := make([]float64, h.Dim())
	h.EncodeTo(state)
	l := env.Config().HistoryLen
	n := env.NumNodes()
	// With one round played, the newest slot (last) must be populated and
	// all older slots zero.
	newest := (l - 1) * 3 * n
	var nonzero bool
	for i := newest; i < newest+3*n; i++ {
		if state[i] != 0 {
			nonzero = true
		}
		if state[i] < 0 || state[i] > 1.0001 {
			t.Fatalf("state[%d] = %v not normalized", i, state[i])
		}
	}
	if !nonzero {
		t.Fatal("newest history slot empty after a round")
	}
	for i := 0; i < newest; i++ {
		if state[i] != 0 {
			t.Fatalf("older slot %d populated after one round", i)
		}
	}
}

func TestMyopicEncoderOmitsLongTermEntries(t *testing.T) {
	env := testEnv(t, 3, 100)
	myopic, err := NewMyopicEncoder(env)
	if err != nil {
		t.Fatalf("NewMyopicEncoder: %v", err)
	}
	exterior, err := NewExteriorEncoder(env)
	if err != nil {
		t.Fatalf("NewExteriorEncoder: %v", err)
	}
	if myopic.Dim() != exterior.Dim()-2 {
		t.Fatalf("myopic dim %d, want %d", myopic.Dim(), exterior.Dim()-2)
	}
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, err := env.Step(fullPrices(env)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	// The myopic observation must equal the exterior history block exactly.
	m, e := myopic.State(), exterior.State()
	for i, v := range m {
		if e[i] != v {
			t.Fatalf("myopic[%d] = %v != exterior[%d] = %v", i, v, i, e[i])
		}
	}
}

func TestEncodingIsPureFunctionOfEnv(t *testing.T) {
	env := testEnv(t, 3, 1000)
	obs, err := NewExteriorEncoder(env)
	if err != nil {
		t.Fatalf("NewExteriorEncoder: %v", err)
	}
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if _, err := env.Step(fullPrices(env)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	a, b := obs.State(), obs.State()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("re-encoding differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestConcatValidation(t *testing.T) {
	if _, err := NewConcat(); err == nil {
		t.Fatal("NewConcat accepted no parts")
	}
}

func TestConditioningEncoder(t *testing.T) {
	env := testEnv(t, 2, 100)
	c := NewConditioningEncoder(env)
	if c.Dim() != 1 {
		t.Fatalf("Dim = %d, want 1", c.Dim())
	}
	total := 0.5 * env.MaxTotalPrice()
	s := c.State(total)
	if len(s) != 1 || math.Abs(s[0]-0.5) > 1e-12 {
		t.Fatalf("State(%v) = %v, want [0.5]", total, s)
	}
}

// ---------------------------------------------------------------------------
// Heads.

func TestBoundedScalarHead(t *testing.T) {
	h := BoundedScalarHead{Lo: 0.1, Hi: 10}
	if got := h.Total(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Total(0) = %v, want geometric mean 1", got)
	}
	if got := h.Total(50); got > 10+1e-9 || got < 0.1 {
		t.Fatalf("Total out of bounds: %v", got)
	}
}

func TestSimplexHeadPricesExhaustTotal(t *testing.T) {
	h := SimplexHead{}
	prices, err := h.Prices(7, []float64{0.5, -1, 2})
	if err != nil {
		t.Fatalf("Prices: %v", err)
	}
	var sum float64
	for _, p := range prices {
		if p < 0 {
			t.Fatalf("negative price %v", p)
		}
		sum += p
	}
	if math.Abs(sum-7) > 1e-9 {
		t.Fatalf("prices sum %v, want 7", sum)
	}
}

func TestBoundedVectorHead(t *testing.T) {
	h := BoundedVectorHead{Lo: 0, Hi: 2}
	prices := h.Prices([]float64{-100, 0, 100})
	if prices[0] > 0.01 || math.Abs(prices[1]-1) > 1e-12 || prices[2] < 1.99 {
		t.Fatalf("Prices = %v", prices)
	}
}

func TestStaticHead(t *testing.T) {
	if _, err := NewStaticHead(nil); err == nil {
		t.Fatal("accepted empty prices")
	}
	src := []float64{1, 2}
	h, err := NewStaticHead(src)
	if err != nil {
		t.Fatalf("NewStaticHead: %v", err)
	}
	src[0] = 99 // the head must have cloned
	if h.Prices()[0] != 1 {
		t.Fatal("StaticHead aliased caller slice")
	}
}

// ---------------------------------------------------------------------------
// Replay head.

func TestReplayHeadValidation(t *testing.T) {
	if _, err := NewReplayHead(-0.1); err == nil {
		t.Fatal("accepted negative epsilon")
	}
	if _, err := NewReplayHead(1.5); err == nil {
		t.Fatal("accepted epsilon > 1")
	}
}

func TestReplayHeadSelectAndScore(t *testing.T) {
	h, err := NewReplayHead(0)
	if err != nil {
		t.Fatalf("NewReplayHead: %v", err)
	}
	h.Seed([]float64{1})
	h.Seed([]float64{2})
	h.Seed([]float64{3})
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	rng := rand.New(rand.NewSource(1))
	// Score entry 1 best, entry 0 worse.
	h.Score(0, 1)
	h.Score(1, 5)
	if idx := h.Select(rng, true, nil); idx != 1 {
		t.Fatalf("Select = %d, want best index 1", idx)
	}
	// First score sets, second folds in the EMA with the exact paper
	// constants (0.9/0.1).
	h.Score(1, 10)
	want := 0.9*5.0 + 0.1*10.0
	if got := h.Snapshot()[1].Reward; got != want {
		t.Fatalf("EMA reward %v, want %v", got, want)
	}
}

func TestReplayHeadExploreAppends(t *testing.T) {
	h, err := NewReplayHead(1) // always explore when training
	if err != nil {
		t.Fatalf("NewReplayHead: %v", err)
	}
	h.Seed([]float64{1})
	rng := rand.New(rand.NewSource(1))
	idx := h.Select(rng, true, func() []float64 { return []float64{42} })
	if idx != 1 || h.Len() != 2 {
		t.Fatalf("explore did not append: idx=%d len=%d", idx, h.Len())
	}
	if h.Prices(idx)[0] != 42 {
		t.Fatal("explored action not stored")
	}
	// Eval never explores even at ε=1.
	before := h.Len()
	h.Select(rng, false, nil)
	if h.Len() != before {
		t.Fatal("eval select appended an action")
	}
}

func TestReplayHeadSnapshotRestore(t *testing.T) {
	h, err := NewReplayHead(0.5)
	if err != nil {
		t.Fatalf("NewReplayHead: %v", err)
	}
	h.Seed([]float64{1, 2})
	h.Score(0, 3)
	snap := h.Snapshot()

	h2, err := NewReplayHead(0.5)
	if err != nil {
		t.Fatalf("NewReplayHead: %v", err)
	}
	if err := h2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	got := h2.Snapshot()
	if len(got) != 1 || got[0].Reward != 3 || !got[0].Tried || got[0].Prices[1] != 2 {
		t.Fatalf("restored %+v", got)
	}
	if err := h2.Restore(nil); err == nil {
		t.Fatal("Restore accepted empty buffer")
	}
	if err := h2.Restore([]ScoredAction{{}}); err == nil {
		t.Fatal("Restore accepted action with no prices")
	}
}

// churnEnv builds an environment whose churn schedule is the given script.
func churnEnv(t *testing.T, nodes int, spec string) *edgeenv.Env {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	cfg := edgeenv.DefaultConfig(fleet, acc, 100)
	cfg.Churn, err = faults.ParseChurnScript(spec)
	if err != nil {
		t.Fatalf("ParseChurnScript: %v", err)
	}
	env, err := edgeenv.New(cfg)
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

func TestPresenceEncoder(t *testing.T) {
	// Node 1 absent until round 3; node 2 departs mid-round 2.
	env := churnEnv(t, 4, "+1@3,-2@2")
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	enc := NewPresenceEncoder(env)
	if enc.Dim() != 4 {
		t.Fatalf("Dim = %d, want 4", enc.Dim())
	}
	read := func() []float64 {
		dst := make([]float64, enc.Dim())
		enc.EncodeTo(dst)
		return dst
	}
	want := func(got, want []float64) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d presence = %v, want %v", env.Round(), got, want)
			}
		}
	}
	want(read(), []float64{1, 0, 1, 1}) // round 1
	if _, err := env.Step(fullPrices(env)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	// Round 2: node 2 is departing mid-round but present at the Offer.
	want(read(), []float64{1, 0, 1, 1})
	if _, err := env.Step(fullPrices(env)); err != nil {
		t.Fatalf("Step: %v", err)
	}
	// Round 3: node 1 arrived, node 2 is gone.
	want(read(), []float64{1, 1, 0, 1})
}

func TestPresenceEncoderNoChurnIsAllOnes(t *testing.T) {
	env := testEnv(t, 3, 100)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	enc := NewPresenceEncoder(env)
	dst := []float64{-1, -1, -1}
	enc.EncodeTo(dst)
	for i, v := range dst {
		if v != 1 {
			t.Fatalf("node %d presence = %v, want 1 without churn", i, v)
		}
	}
}

func TestChurnAwareEncoderDim(t *testing.T) {
	env := churnEnv(t, 3, "-0@4")
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	ext, err := NewExteriorEncoder(env)
	if err != nil {
		t.Fatalf("NewExteriorEncoder: %v", err)
	}
	aware, err := NewChurnAwareEncoder(env)
	if err != nil {
		t.Fatalf("NewChurnAwareEncoder: %v", err)
	}
	// The churn-aware layout is the exterior layout plus one presence bit
	// per node; the exterior dim itself must not move (checkpoint pin).
	if aware.Dim() != ext.Dim()+env.NumNodes() {
		t.Fatalf("churn-aware dim %d, want exterior %d + %d", aware.Dim(), ext.Dim(), env.NumNodes())
	}
	s := aware.State()
	hist := 3 * env.NumNodes() * env.Config().HistoryLen
	for i := 0; i < env.NumNodes(); i++ {
		if s[hist+i] != 1 {
			t.Fatalf("presence block at offset %d = %v, want 1", hist+i, s[hist+i])
		}
	}
}

// TestHistoryEncoderClampsNarrowRecords: a ledger record narrower than the
// fleet (legacy trace or shrunken roster) must encode zeros for the
// missing tail, not panic.
func TestHistoryEncoderClampsNarrowRecords(t *testing.T) {
	env := testEnv(t, 3, 100)
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if err := env.Ledger().Commit(market.Round{
		Prices:       []float64{1, 1},
		Freqs:        []float64{2e8, 0},
		Times:        []float64{1.5, 0},
		Participants: 1,
		Payment:      0.5,
	}); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	enc := NewHistoryEncoder(env)
	dst := make([]float64, enc.Dim())
	enc.EncodeTo(dst) // must not panic
	n, window := env.NumNodes(), env.Config().HistoryLen
	base := (window - 1) * 3 * n // newest slot
	if dst[base] == 0 {
		t.Fatal("clamped record encoded nothing for node 0")
	}
	if dst[base+2] != 0 || dst[base+n+2] != 0 || dst[base+2*n+2] != 0 {
		t.Fatal("missing node 2 tail should encode zeros")
	}
}
