package baselines

import (
	"fmt"
	"math"

	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
	"chiron/internal/policy"
)

// EqualTime is the Lemma-1 oracle: it computes, in closed form from the
// (in reality private) node parameters, the cheapest price vector that
// makes every node finish in the same target round time. It is an upper
// reference for the inner agent's time-consistency objective and an
// ablation baseline — Chiron must learn without the private information
// this oracle reads directly.
type EqualTime struct {
	env *edgeenv.Env
	drv *mechanism.Driver
}

var _ mechanism.Mechanism = (*EqualTime)(nil)

// NewEqualTime builds the oracle. target is the desired round time T in
// seconds; it must be at least MinFeasibleTime(env) or nodes will be
// unable to reach it and the slowest node will still define T_k. The
// Lemma-1 prices depend only on the static node parameters, so they are
// computed once here and posted by a static head every round.
func NewEqualTime(env *edgeenv.Env, target float64) (*EqualTime, error) {
	if target <= 0 {
		return nil, fmt.Errorf("baselines: equal-time target %v, want > 0", target)
	}
	head, err := policy.NewStaticHead(PricesForTime(env.Nodes(), target))
	if err != nil {
		return nil, fmt.Errorf("baselines: equal-time: %w", err)
	}
	e := &EqualTime{env: env}
	e.drv = mechanism.NewDriver("equal-time", env, staticActor{head: head})
	return e, nil
}

// MinFeasibleTime returns the smallest round time every node can reach:
// max_i (σ c d_i / ζ_i^max + T^com_i).
func MinFeasibleTime(env *edgeenv.Env) float64 {
	var worst float64
	for _, n := range env.Nodes() {
		if t := n.RoundTime(n.FreqMax); t > worst {
			worst = t
		}
	}
	return worst
}

// PricesForTime computes the per-node price vector that makes every node's
// best response finish in the target time (clipped to each node's feasible
// frequency range, and raised to the participation threshold where the
// reserve utility binds).
func PricesForTime(nodes []*device.Node, target float64) []float64 {
	prices := make([]float64, len(nodes))
	for i, n := range nodes {
		cmp := target - n.CommTime
		var freq float64
		if cmp <= 0 {
			freq = n.FreqMax // cannot hit target; run flat out
		} else {
			freq = n.ComputeTime(1) / cmp // σcd/cmp since ComputeTime(1)=σcd
			freq = math.Min(math.Max(freq, n.FreqMin), n.FreqMax)
		}
		p := n.PriceForFreq(freq)
		if !n.BestResponse(p).Participating {
			// Raise to the cheapest participating price; the node will run
			// slightly faster than the target rather than decline.
			if mp := n.MinParticipationPrice(n.PriceForFreq(n.FreqMax)); !math.IsInf(mp, 1) {
				p = mp
			}
		}
		prices[i] = p
	}
	return prices
}

// Name implements mechanism.Mechanism.
func (e *EqualTime) Name() string { return "EqualTime-Oracle" }

// Env implements mechanism.Mechanism.
func (e *EqualTime) Env() *edgeenv.Env { return e.env }

// RunEpisode implements mechanism.Mechanism. The train flag is ignored —
// the oracle is closed-form.
func (e *EqualTime) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	return e.drv.RunEpisode(train)
}
