// Package baselines implements the two comparison mechanisms of Sec. VI:
// the single-agent DRL-based approach of Zhan et al. (INFOCOM'20) and the
// replay-buffer Greedy strategy, plus a static Uniform reference used by
// ablation benchmarks. All four run through the shared agent stack — the
// internal/policy encoders and heads, the internal/rl learner core, and the
// mechanism.Driver episode loop.
package baselines

import (
	"fmt"
	"math/rand"

	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
	"chiron/internal/policy"
	"chiron/internal/rl"
)

// RewardMode selects the DRL-based baseline's myopic objective.
type RewardMode int

// The two single-round objectives.
const (
	// RewardServerRound scores each round with the same per-round server
	// reward Chiron's exterior agent receives (λΔA − w·T_k). This is the
	// paper's comparison methodology: identical optimization goal,
	// single-agent architecture, no budget awareness.
	RewardServerRound RewardMode = iota + 1
	// RewardTimeEnergy is the original objective of [8]: minimize the
	// round's learning time and compensated node energy, with no
	// model-accuracy term. Kept as an ablation.
	RewardTimeEnergy
)

// DRLBasedConfig parameterizes the single-agent baseline.
type DRLBasedConfig struct {
	// PPO holds the agent's hyperparameters (the paper gives it the same
	// standard PPO machinery as Chiron).
	PPO rl.PPOConfig
	// Mode selects the myopic objective (default RewardServerRound).
	Mode RewardMode
	// EnergyWeight is κ in the RewardTimeEnergy objective
	// r_k = −T_k − κ·ΣE_{i,k}.
	EnergyWeight float64
	// RewardScale rescales rewards to O(1) before they enter the replay
	// buffer (learner conditioning only).
	RewardScale float64
	// Seed drives the agent's stochasticity.
	Seed int64
}

// DefaultDRLBasedConfig mirrors the paper's baseline setup. The discount
// factor is zero: the original work "only derive[s] the optimal solution of
// single round", so its agent optimizes each round's reward in isolation
// with no credit flowing across rounds.
func DefaultDRLBasedConfig() DRLBasedConfig {
	cfg := DRLBasedConfig{PPO: rl.DefaultPPOConfig(), Mode: RewardServerRound, EnergyWeight: 0.1, RewardScale: 0.01, Seed: 1}
	cfg.PPO.Gamma = 0
	return cfg
}

// DRLBased is the state-of-the-art comparison from [8]: one PPO agent
// directly outputs the full per-node price vector each round and optimizes
// the single-round (myopic) objective. Its observation (the myopic encoder)
// omits the remaining budget — the defining difference from Chiron's
// long-term exterior agent — and its reward carries no model-accuracy term.
type DRLBased struct {
	cfg   DRLBasedConfig
	env   *edgeenv.Env
	obs   *policy.Concat           // history-only myopic observation
	head  policy.BoundedVectorHead // per-node price head
	pair  *rl.Pair
	sched *rl.Scheduler
	drv   *mechanism.Driver
	src   *rl.CountingSource
	rng   *rand.Rand

	// Per-round actor scratch, valid between Decide and Observe.
	lastState []float64
	lastAct   []float64
	lastLP    float64
}

var (
	_ mechanism.Mechanism    = (*DRLBased)(nil)
	_ mechanism.Actor        = (*DRLBased)(nil)
	_ mechanism.Checkpointer = (*DRLBased)(nil)
)

// NewDRLBased builds the baseline bound to env.
func NewDRLBased(env *edgeenv.Env, cfg DRLBasedConfig) (*DRLBased, error) {
	if err := cfg.PPO.Validate(); err != nil {
		return nil, fmt.Errorf("baselines: drl-based: %w", err)
	}
	if cfg.EnergyWeight < 0 {
		return nil, fmt.Errorf("baselines: drl-based energy weight %v, want >= 0", cfg.EnergyWeight)
	}
	if cfg.RewardScale <= 0 {
		return nil, fmt.Errorf("baselines: drl-based reward scale %v, want > 0", cfg.RewardScale)
	}
	if cfg.Mode != RewardServerRound && cfg.Mode != RewardTimeEnergy {
		return nil, fmt.Errorf("baselines: drl-based reward mode %d", cfg.Mode)
	}
	src := rl.NewCountingSource(cfg.Seed)
	rng := rand.New(src)
	obs, err := policy.NewMyopicEncoder(env)
	if err != nil {
		return nil, fmt.Errorf("baselines: drl-based encoder: %w", err)
	}
	agent, err := rl.NewPPO(rng, obs.Dim(), env.NumNodes(), cfg.PPO)
	if err != nil {
		return nil, fmt.Errorf("baselines: drl-based agent: %w", err)
	}
	d := &DRLBased{
		cfg: cfg,
		env: env,
		obs: obs,
		// The action square covers the same feasible region as Chiron's
		// total-price simplex.
		head: policy.BoundedVectorHead{Lo: 0, Hi: env.MaxTotalPrice() / float64(env.NumNodes())},
		pair: rl.NewPair("agent", agent, cfg.RewardScale),
		src:  src,
		rng:  rng,
	}
	// Update-then-decay: nothing happens on an episode that produced no
	// samples; otherwise update every episode (no cross-episode batching).
	d.sched = &rl.Scheduler{Pairs: []*rl.Pair{d.pair}, Gate: 0, MinSamples: 1}
	d.drv = mechanism.NewDriver("drl-based", env, d)
	return d, nil
}

// Name implements mechanism.Mechanism.
func (d *DRLBased) Name() string { return "DRL-based" }

// Env implements mechanism.Mechanism.
func (d *DRLBased) Env() *edgeenv.Env { return d.env }

// Agent exposes the underlying PPO learner.
func (d *DRLBased) Agent() *rl.PPO { return d.pair.Agent }

// Episode returns the number of training episodes completed.
func (d *DRLBased) Episode() int { return d.drv.Episode() }

// SetRoundHook installs a pre-round callback on the episode driver (see
// mechanism.Driver.SetRoundHook).
func (d *DRLBased) SetRoundHook(hook func(episode, round int) error) { d.drv.SetRoundHook(hook) }

// Decide implements mechanism.Actor.
func (d *DRLBased) Decide(train bool) ([]float64, error) {
	d.lastState = d.obs.State()
	var err error
	if train {
		d.lastAct, d.lastLP, err = d.pair.Agent.Act(d.rng, d.lastState)
	} else {
		d.lastAct, err = d.pair.Agent.ActDeterministic(d.lastState)
	}
	if err != nil {
		return nil, fmt.Errorf("baselines: drl-based act: %w", err)
	}
	return d.head.Prices(d.lastAct), nil
}

// Observe implements mechanism.Actor.
func (d *DRLBased) Observe(res edgeenv.StepResult, train bool) error {
	if !train {
		return nil
	}
	d.pair.Store(rl.Transition{
		State:     d.lastState,
		Action:    d.lastAct,
		Reward:    d.myopicReward(res),
		NextState: d.obs.State(),
		Done:      res.Done,
		LogProb:   d.lastLP,
	})
	return nil
}

// Discard implements mechanism.Actor: the discarded budget-overrun round
// stores nothing, so the previous committed round was terminal.
func (d *DRLBased) Discard(train bool) {
	if train {
		d.pair.Buf.MarkLastDone()
	}
}

// EndEpisode implements mechanism.Actor.
func (d *DRLBased) EndEpisode(train bool) error {
	if !train {
		return nil
	}
	if err := d.sched.EndEpisode(); err != nil {
		return fmt.Errorf("baselines: drl-based update: %w", err)
	}
	return nil
}

// RunEpisode implements mechanism.Mechanism.
func (d *DRLBased) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	return d.drv.RunEpisode(train)
}

// myopicReward scores one round under the configured single-round
// objective; neither mode carries any view of the remaining budget.
func (d *DRLBased) myopicReward(res edgeenv.StepResult) float64 {
	if d.cfg.Mode == RewardServerRound {
		return res.ExteriorReward
	}
	var energy float64
	for i, node := range d.env.Nodes() {
		if f := res.Round.Freqs[i]; f > 0 {
			energy += node.Energy(f)
		}
	}
	return -res.Round.RoundTime() - d.cfg.EnergyWeight*energy
}

// Train runs training episodes, mirroring core.Chiron.Train.
func (d *DRLBased) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	return d.drv.Train(episodes, callback)
}

// drlCheckpointMechanism tags DRL-based checkpoints in the unified format.
const drlCheckpointMechanism = "drl-based"

// Checkpoint captures the baseline's training state in the unified format.
func (d *DRLBased) Checkpoint() *rl.Checkpoint {
	rng := d.src.State()
	return &rl.Checkpoint{
		Mechanism: drlCheckpointMechanism,
		Nodes:     d.env.NumNodes(),
		StateDim:  d.obs.Dim(),
		Episode:   d.drv.Episode(),
		RNG:       &rng,
		Agents:    []rl.AgentState{rl.PairState(d.pair)},
	}
}

// Restore overwrites the baseline's training state from a checkpoint taken
// on an identically shaped system.
func (d *DRLBased) Restore(ck *rl.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("baselines: restore from nil checkpoint")
	}
	if ck.Mechanism != "" && ck.Mechanism != drlCheckpointMechanism {
		return fmt.Errorf("%w: checkpoint for mechanism %q, want %q", rl.ErrShapeMismatch, ck.Mechanism, drlCheckpointMechanism)
	}
	st := ck.Agent("agent")
	if st == nil || st.Snapshot == nil {
		return fmt.Errorf("%w: missing agent snapshot", rl.ErrCorruptCheckpoint)
	}
	if ck.Nodes != d.env.NumNodes() || ck.StateDim != d.obs.Dim() {
		return fmt.Errorf("%w: checkpoint for %d nodes / state dim %d, environment has %d / %d",
			rl.ErrShapeMismatch, ck.Nodes, ck.StateDim, d.env.NumNodes(), d.obs.Dim())
	}
	if err := rl.RestorePair(d.pair, st); err != nil {
		return fmt.Errorf("baselines: restore drl-based: %w", err)
	}
	d.drv.SetEpisode(ck.Episode)
	if ck.RNG != nil {
		if err := d.src.Restore(*ck.RNG); err != nil {
			return fmt.Errorf("baselines: restore rng: %w", err)
		}
	}
	return nil
}

// SaveCheckpoint writes the baseline's training state as JSON to path.
func (d *DRLBased) SaveCheckpoint(path string) error {
	return rl.SaveCheckpoint(path, d.Checkpoint())
}

// LoadCheckpoint restores the baseline's training state from a
// SaveCheckpoint file.
func (d *DRLBased) LoadCheckpoint(path string) error {
	ck, err := rl.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	return d.Restore(ck)
}
