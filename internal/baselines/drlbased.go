// Package baselines implements the two comparison mechanisms of Sec. VI:
// the single-agent DRL-based approach of Zhan et al. (INFOCOM'20) and the
// replay-buffer Greedy strategy, plus a static Uniform reference used by
// ablation benchmarks.
package baselines

import (
	"fmt"
	"math/rand"

	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
	"chiron/internal/rl"
)

// RewardMode selects the DRL-based baseline's myopic objective.
type RewardMode int

// The two single-round objectives.
const (
	// RewardServerRound scores each round with the same per-round server
	// reward Chiron's exterior agent receives (λΔA − w·T_k). This is the
	// paper's comparison methodology: identical optimization goal,
	// single-agent architecture, no budget awareness.
	RewardServerRound RewardMode = iota + 1
	// RewardTimeEnergy is the original objective of [8]: minimize the
	// round's learning time and compensated node energy, with no
	// model-accuracy term. Kept as an ablation.
	RewardTimeEnergy
)

// DRLBasedConfig parameterizes the single-agent baseline.
type DRLBasedConfig struct {
	// PPO holds the agent's hyperparameters (the paper gives it the same
	// standard PPO machinery as Chiron).
	PPO rl.PPOConfig
	// Mode selects the myopic objective (default RewardServerRound).
	Mode RewardMode
	// EnergyWeight is κ in the RewardTimeEnergy objective
	// r_k = −T_k − κ·ΣE_{i,k}.
	EnergyWeight float64
	// RewardScale rescales rewards to O(1) before they enter the replay
	// buffer (learner conditioning only).
	RewardScale float64
	// Seed drives the agent's stochasticity.
	Seed int64
}

// DefaultDRLBasedConfig mirrors the paper's baseline setup. The discount
// factor is zero: the original work "only derive[s] the optimal solution of
// single round", so its agent optimizes each round's reward in isolation
// with no credit flowing across rounds.
func DefaultDRLBasedConfig() DRLBasedConfig {
	cfg := DRLBasedConfig{PPO: rl.DefaultPPOConfig(), Mode: RewardServerRound, EnergyWeight: 0.1, RewardScale: 0.01, Seed: 1}
	cfg.PPO.Gamma = 0
	return cfg
}

// DRLBased is the state-of-the-art comparison from [8]: one PPO agent
// directly outputs the full per-node price vector each round and optimizes
// the single-round (myopic) objective. Its state omits the remaining
// budget — the defining difference from Chiron's long-term exterior agent —
// and its reward carries no model-accuracy term.
type DRLBased struct {
	cfg     DRLBasedConfig
	env     *edgeenv.Env
	agent   *rl.PPO
	buf     *rl.Buffer
	rng     *rand.Rand
	episode int
}

var _ mechanism.Mechanism = (*DRLBased)(nil)

// NewDRLBased builds the baseline bound to env.
func NewDRLBased(env *edgeenv.Env, cfg DRLBasedConfig) (*DRLBased, error) {
	if err := cfg.PPO.Validate(); err != nil {
		return nil, fmt.Errorf("baselines: drl-based: %w", err)
	}
	if cfg.EnergyWeight < 0 {
		return nil, fmt.Errorf("baselines: drl-based energy weight %v, want >= 0", cfg.EnergyWeight)
	}
	if cfg.RewardScale <= 0 {
		return nil, fmt.Errorf("baselines: drl-based reward scale %v, want > 0", cfg.RewardScale)
	}
	if cfg.Mode != RewardServerRound && cfg.Mode != RewardTimeEnergy {
		return nil, fmt.Errorf("baselines: drl-based reward mode %d", cfg.Mode)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	agent, err := rl.NewPPO(rng, myopicStateDim(env), env.NumNodes(), cfg.PPO)
	if err != nil {
		return nil, fmt.Errorf("baselines: drl-based agent: %w", err)
	}
	return &DRLBased{cfg: cfg, env: env, agent: agent, buf: &rl.Buffer{}, rng: rng}, nil
}

// Name implements mechanism.Mechanism.
func (d *DRLBased) Name() string { return "DRL-based" }

// Env implements mechanism.Mechanism.
func (d *DRLBased) Env() *edgeenv.Env { return d.env }

// Agent exposes the underlying PPO learner.
func (d *DRLBased) Agent() *rl.PPO { return d.agent }

// myopicStateDim is the exterior state minus the two long-term entries
// (remaining budget and round index).
func myopicStateDim(env *edgeenv.Env) int { return env.StateDim() - 2 }

// myopicState truncates the environment state to the history window only.
func (d *DRLBased) myopicState() []float64 {
	full := d.env.ExteriorState()
	return full[:len(full)-2]
}

// priceCapPerNode bounds each node's price so the action square covers the
// same feasible region as Chiron's total-price simplex.
func (d *DRLBased) priceCapPerNode() float64 {
	return d.env.MaxTotalPrice() / float64(d.env.NumNodes())
}

// RunEpisode implements mechanism.Mechanism.
func (d *DRLBased) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	if _, err := d.env.Reset(); err != nil {
		return mechanism.EpisodeResult{}, err
	}
	state := d.myopicState()
	priceCap := d.priceCapPerNode()
	ext := mechanism.NewReturns()
	var innReturn float64
	for !d.env.Done() {
		var act []float64
		var lp float64
		var err error
		if train {
			act, lp, err = d.agent.Act(d.rng, state)
		} else {
			act, err = d.agent.ActDeterministic(state)
		}
		if err != nil {
			return mechanism.EpisodeResult{}, fmt.Errorf("baselines: drl-based act: %w", err)
		}
		prices := rl.SquashVec(act, 0, priceCap)
		res, err := d.env.Step(prices)
		if err != nil {
			return mechanism.EpisodeResult{}, err
		}
		next := d.myopicState()
		if res.Done && res.Round.Participants == 0 {
			// Discarded budget-overrun round: the previous committed round
			// was terminal.
			if train {
				d.buf.MarkLastDone()
			}
			break
		}
		ext.Add(res.ExteriorReward)
		innReturn += res.InnerReward
		if train {
			d.buf.Add(rl.Transition{
				State:     state,
				Action:    act,
				Reward:    d.myopicReward(res) * d.cfg.RewardScale,
				NextState: next,
				Done:      res.Done,
				LogProb:   lp,
			})
		}
		state = next
		if res.Done {
			break
		}
	}
	d.episode++
	result := mechanism.Summarize(d.env, d.episode, ext, innReturn)
	if train && d.buf.Len() > 0 {
		if _, err := d.agent.Update(d.buf); err != nil {
			return mechanism.EpisodeResult{}, fmt.Errorf("baselines: drl-based update: %w", err)
		}
		d.buf.Clear()
		d.agent.EndEpisode()
	}
	return result, nil
}

// myopicReward scores one round under the configured single-round
// objective; neither mode carries any view of the remaining budget.
func (d *DRLBased) myopicReward(res edgeenv.StepResult) float64 {
	if d.cfg.Mode == RewardServerRound {
		return res.ExteriorReward
	}
	var energy float64
	for i, node := range d.env.Nodes() {
		if f := res.Round.Freqs[i]; f > 0 {
			energy += node.Energy(f)
		}
	}
	return -res.Round.RoundTime() - d.cfg.EnergyWeight*energy
}

// Train runs training episodes, mirroring core.Chiron.Train.
func (d *DRLBased) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	if episodes <= 0 {
		return nil, fmt.Errorf("baselines: train %d episodes, want > 0", episodes)
	}
	results := make([]mechanism.EpisodeResult, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		res, err := d.RunEpisode(true)
		if err != nil {
			return results, fmt.Errorf("baselines: drl-based episode %d: %w", ep+1, err)
		}
		results = append(results, res)
		if callback != nil {
			callback(res)
		}
	}
	return results, nil
}
