package baselines

import (
	"fmt"

	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
)

// Uniform is a static reference mechanism: every round it posts the same
// total price, split equally across nodes. It is not a paper baseline but
// serves as the ablation floor — any learning mechanism should beat it —
// and as a deterministic fixture for tests.
type Uniform struct {
	env      *edgeenv.Env
	fraction float64
	episode  int
}

var _ mechanism.Mechanism = (*Uniform)(nil)

// NewUniform builds the reference mechanism. fraction ∈ (0,1] scales the
// per-round total price as a share of the environment's MaxTotalPrice.
func NewUniform(env *edgeenv.Env, fraction float64) (*Uniform, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("baselines: uniform fraction %v outside (0,1]", fraction)
	}
	return &Uniform{env: env, fraction: fraction}, nil
}

// Name implements mechanism.Mechanism.
func (u *Uniform) Name() string { return "Uniform" }

// Env implements mechanism.Mechanism.
func (u *Uniform) Env() *edgeenv.Env { return u.env }

// RunEpisode implements mechanism.Mechanism. The train flag is ignored —
// the mechanism is stateless.
func (u *Uniform) RunEpisode(bool) (mechanism.EpisodeResult, error) {
	if _, err := u.env.Reset(); err != nil {
		return mechanism.EpisodeResult{}, err
	}
	n := u.env.NumNodes()
	per := u.fraction * u.env.MaxTotalPrice() / float64(n)
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = per
	}
	ext := mechanism.NewReturns()
	var innReturn float64
	for !u.env.Done() {
		res, err := u.env.Step(prices)
		if err != nil {
			return mechanism.EpisodeResult{}, err
		}
		if res.Done && res.Round.Participants == 0 {
			break
		}
		ext.Add(res.ExteriorReward)
		innReturn += res.InnerReward
		if res.Done {
			break
		}
	}
	u.episode++
	return mechanism.Summarize(u.env, u.episode, ext, innReturn), nil
}
