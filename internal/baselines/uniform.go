package baselines

import (
	"fmt"

	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
	"chiron/internal/policy"
)

// staticActor adapts a StaticHead to the driver's Actor surface — the
// shared composition behind the non-learning references (Uniform,
// EqualTime), which run through the same episode loop as the learners but
// observe nothing and never update.
type staticActor struct {
	head *policy.StaticHead
}

func (a staticActor) Decide(bool) ([]float64, error)         { return a.head.Prices(), nil }
func (a staticActor) Observe(edgeenv.StepResult, bool) error { return nil }
func (a staticActor) Discard(bool)                           {}
func (a staticActor) EndEpisode(bool) error                  { return nil }

// Uniform is a static reference mechanism: every round it posts the same
// total price, split equally across nodes. It is not a paper baseline but
// serves as the ablation floor — any learning mechanism should beat it —
// and as a deterministic fixture for tests.
type Uniform struct {
	env *edgeenv.Env
	drv *mechanism.Driver
}

var _ mechanism.Mechanism = (*Uniform)(nil)

// NewUniform builds the reference mechanism. fraction ∈ (0,1] scales the
// per-round total price as a share of the environment's MaxTotalPrice.
func NewUniform(env *edgeenv.Env, fraction float64) (*Uniform, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("baselines: uniform fraction %v outside (0,1]", fraction)
	}
	n := env.NumNodes()
	per := fraction * env.MaxTotalPrice() / float64(n)
	prices := make([]float64, n)
	for i := range prices {
		prices[i] = per
	}
	head, err := policy.NewStaticHead(prices)
	if err != nil {
		return nil, fmt.Errorf("baselines: uniform: %w", err)
	}
	u := &Uniform{env: env}
	u.drv = mechanism.NewDriver("uniform", env, staticActor{head: head})
	return u, nil
}

// Name implements mechanism.Mechanism.
func (u *Uniform) Name() string { return "Uniform" }

// Env implements mechanism.Mechanism.
func (u *Uniform) Env() *edgeenv.Env { return u.env }

// RunEpisode implements mechanism.Mechanism. The train flag is ignored —
// the mechanism is stateless.
func (u *Uniform) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	return u.drv.RunEpisode(train)
}
