package baselines

import (
	"math"
	"math/rand"
	"testing"

	"chiron/internal/accuracy"
	"chiron/internal/device"
	"chiron/internal/edgeenv"
	"chiron/internal/policy"
)

func testEnv(t *testing.T, nodes int, budget float64) *edgeenv.Env {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	fleet, err := device.NewFleet(rng, device.DefaultFleetSpec(nodes))
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	acc, err := accuracy.NewPresetCurve(rand.New(rand.NewSource(8)), accuracy.PresetMNIST, nodes)
	if err != nil {
		t.Fatalf("NewPresetCurve: %v", err)
	}
	env, err := edgeenv.New(edgeenv.DefaultConfig(fleet, acc, budget))
	if err != nil {
		t.Fatalf("edgeenv.New: %v", err)
	}
	return env
}

func TestDRLBasedConfigValidation(t *testing.T) {
	env := testEnv(t, 2, 100)
	bad := DefaultDRLBasedConfig()
	bad.EnergyWeight = -1
	if _, err := NewDRLBased(env, bad); err == nil {
		t.Fatal("accepted negative energy weight")
	}
	bad = DefaultDRLBasedConfig()
	bad.RewardScale = 0
	if _, err := NewDRLBased(env, bad); err == nil {
		t.Fatal("accepted zero reward scale")
	}
	bad = DefaultDRLBasedConfig()
	bad.Mode = 0
	if _, err := NewDRLBased(env, bad); err == nil {
		t.Fatal("accepted invalid reward mode")
	}
}

func TestDRLBasedIsMyopic(t *testing.T) {
	cfg := DefaultDRLBasedConfig()
	// The defining properties of the baseline: zero discount (single-round
	// optimization) and no budget entry in the state.
	if cfg.PPO.Gamma != 0 {
		t.Fatalf("gamma %v, want 0 (single-round optimization)", cfg.PPO.Gamma)
	}
	env := testEnv(t, 3, 100)
	myopic, err := policy.NewMyopicEncoder(env)
	if err != nil {
		t.Fatalf("NewMyopicEncoder: %v", err)
	}
	exterior, err := policy.NewExteriorEncoder(env)
	if err != nil {
		t.Fatalf("NewExteriorEncoder: %v", err)
	}
	if got, want := myopic.Dim(), exterior.Dim()-2; got != want {
		t.Fatalf("myopic state dim %d, want %d (no budget, no round index)", got, want)
	}
}

func TestDRLBasedEpisodeRuns(t *testing.T) {
	env := testEnv(t, 3, 100)
	d, err := NewDRLBased(env, DefaultDRLBasedConfig())
	if err != nil {
		t.Fatalf("NewDRLBased: %v", err)
	}
	if d.Name() != "DRL-based" || d.Env() != env {
		t.Fatal("identity accessors wrong")
	}
	res, err := d.RunEpisode(true)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if res.Rounds <= 0 || res.BudgetSpent > 100+1e-9 {
		t.Fatalf("episode result %+v", res)
	}
	// Eval must be deterministic.
	a, err := d.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	b, err := d.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if a.Rounds != b.Rounds || math.Abs(a.BudgetSpent-b.BudgetSpent) > 1e-9 {
		t.Fatal("deterministic episodes differ")
	}
}

func TestDRLBasedEnergyModeReward(t *testing.T) {
	env := testEnv(t, 3, 100)
	cfg := DefaultDRLBasedConfig()
	cfg.Mode = RewardTimeEnergy
	d, err := NewDRLBased(env, cfg)
	if err != nil {
		t.Fatalf("NewDRLBased: %v", err)
	}
	if err := env.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	prices := make([]float64, 3)
	for i, n := range env.Nodes() {
		prices[i] = n.PriceForFreq(n.FreqMax)
	}
	res, err := env.Step(prices)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	r := d.myopicReward(res)
	if r >= 0 {
		t.Fatalf("time+energy reward %v, want negative", r)
	}
	// It must differ from the server-round reward mode.
	d.cfg.Mode = RewardServerRound
	if d.myopicReward(res) == r {
		t.Fatal("reward modes indistinguishable")
	}
}

func TestDRLBasedTrain(t *testing.T) {
	env := testEnv(t, 2, 60)
	d, err := NewDRLBased(env, DefaultDRLBasedConfig())
	if err != nil {
		t.Fatalf("NewDRLBased: %v", err)
	}
	results, err := d.Train(4, nil)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	if _, err := d.Train(0, nil); err == nil {
		t.Fatal("Train accepted zero episodes")
	}
}

func TestGreedyConfigValidation(t *testing.T) {
	if err := DefaultGreedyConfig().Validate(); err != nil {
		t.Fatalf("default rejected: %v", err)
	}
	if err := (GreedyConfig{WarmupActions: 0, Epsilon: 0.1}).Validate(); err == nil {
		t.Fatal("accepted zero warmup")
	}
	if err := (GreedyConfig{WarmupActions: 4, Epsilon: 1.5}).Validate(); err == nil {
		t.Fatal("accepted epsilon > 1")
	}
}

func TestGreedyWarmupAndExploration(t *testing.T) {
	env := testEnv(t, 3, 100)
	cfg := GreedyConfig{WarmupActions: 8, Epsilon: 1.0, Seed: 3} // always explore
	g, err := NewGreedy(env, cfg)
	if err != nil {
		t.Fatalf("NewGreedy: %v", err)
	}
	if g.BufferSize() != 8 {
		t.Fatalf("warmup buffer %d, want 8", g.BufferSize())
	}
	res, err := g.RunEpisode(true)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	// With ε=1 every played round appends a new action.
	if g.BufferSize() < 8+res.Rounds {
		t.Fatalf("buffer %d after %d exploring rounds", g.BufferSize(), res.Rounds)
	}
}

func TestGreedyExploitsBestAction(t *testing.T) {
	env := testEnv(t, 3, 100)
	cfg := GreedyConfig{WarmupActions: 8, Epsilon: 0, Seed: 3} // never explore
	g, err := NewGreedy(env, cfg)
	if err != nil {
		t.Fatalf("NewGreedy: %v", err)
	}
	if _, err := g.RunEpisode(true); err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	size := g.BufferSize()
	if size != 8 {
		t.Fatalf("buffer grew without exploration: %d", size)
	}
	// Eval replays deterministically.
	a, err := g.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	b, err := g.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if a.Rounds != b.Rounds {
		t.Fatal("greedy eval not deterministic")
	}
}

func TestUniformMechanism(t *testing.T) {
	env := testEnv(t, 3, 100)
	if _, err := NewUniform(env, 0); err == nil {
		t.Fatal("accepted zero fraction")
	}
	if _, err := NewUniform(env, 1.5); err == nil {
		t.Fatal("accepted fraction > 1")
	}
	u, err := NewUniform(env, 0.5)
	if err != nil {
		t.Fatalf("NewUniform: %v", err)
	}
	res, err := u.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	if res.Rounds <= 0 || res.FinalAccuracy <= 0 {
		t.Fatalf("uniform result %+v", res)
	}
}

func TestEqualTimeOracleAchievesConsistency(t *testing.T) {
	env := testEnv(t, 5, 200)
	minT := MinFeasibleTime(env)
	if minT <= 0 {
		t.Fatalf("MinFeasibleTime = %v", minT)
	}
	o, err := NewEqualTime(env, minT)
	if err != nil {
		t.Fatalf("NewEqualTime: %v", err)
	}
	res, err := o.RunEpisode(false)
	if err != nil {
		t.Fatalf("RunEpisode: %v", err)
	}
	// The oracle reads private parameters, so its time efficiency should
	// be near-perfect — the Lemma 1 upper reference.
	if res.TimeEfficiency < 0.95 {
		t.Fatalf("oracle time efficiency %v, want >= 0.95", res.TimeEfficiency)
	}
	if res.Rounds <= 0 {
		t.Fatal("oracle played no rounds")
	}
}

func TestEqualTimeValidation(t *testing.T) {
	env := testEnv(t, 2, 100)
	if _, err := NewEqualTime(env, 0); err == nil {
		t.Fatal("accepted zero target")
	}
}

func TestPricesForTimeHitTarget(t *testing.T) {
	env := testEnv(t, 5, 200)
	target := MinFeasibleTime(env) * 1.2
	prices := PricesForTime(env.Nodes(), target)
	for i, n := range env.Nodes() {
		resp := n.BestResponse(prices[i])
		if !resp.Participating {
			t.Fatalf("node %d declined the oracle price", i)
		}
		// Within feasibility the response time must be within 5%% of target
		// (nodes forced to their boxes may be faster).
		if resp.Time > target*1.05 {
			t.Fatalf("node %d time %v exceeds target %v", i, resp.Time, target)
		}
	}
}
