package baselines

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"chiron/internal/edgeenv"
	"chiron/internal/mechanism"
	"chiron/internal/policy"
	"chiron/internal/rl"
)

// GreedyConfig parameterizes the Greedy baseline.
type GreedyConfig struct {
	// WarmupActions seeds the replay buffer with random price vectors.
	WarmupActions int
	// Epsilon is the exploration probability: with probability Epsilon a
	// new random action is tried instead of the best known one.
	Epsilon float64
	// Seed drives the baseline's stochasticity.
	Seed int64
}

// DefaultGreedyConfig mirrors the paper's description: a random warmup
// buffer, then exploit-with-high-probability.
func DefaultGreedyConfig() GreedyConfig {
	return GreedyConfig{WarmupActions: 32, Epsilon: 0.1, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c GreedyConfig) Validate() error {
	if c.WarmupActions <= 0 {
		return fmt.Errorf("baselines: greedy warmup %d, want > 0", c.WarmupActions)
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("baselines: greedy epsilon %v outside [0,1]", c.Epsilon)
	}
	return nil
}

// Greedy is the paper's second baseline: an ε-greedy replay head that fills
// a buffer with random price vectors, scores them by observed per-round
// reward, and replays the best-scoring action with probability 1−ε while
// exploring new random actions with probability ε. It has no learning-time
// structure and no budget pacing.
type Greedy struct {
	cfg  GreedyConfig
	env  *edgeenv.Env
	head *policy.ReplayHead
	drv  *mechanism.Driver
	src  *rl.CountingSource
	rng  *rand.Rand

	// lastIdx is the replay entry selected by the latest Decide.
	lastIdx int
}

var (
	_ mechanism.Mechanism    = (*Greedy)(nil)
	_ mechanism.Actor        = (*Greedy)(nil)
	_ mechanism.Checkpointer = (*Greedy)(nil)
)

// NewGreedy builds the baseline bound to env and pre-fills the replay
// buffer with random actions.
func NewGreedy(env *edgeenv.Env, cfg GreedyConfig) (*Greedy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	head, err := policy.NewReplayHead(cfg.Epsilon)
	if err != nil {
		return nil, fmt.Errorf("baselines: greedy: %w", err)
	}
	src := rl.NewCountingSource(cfg.Seed)
	g := &Greedy{cfg: cfg, env: env, head: head, src: src, rng: rand.New(src)}
	for i := 0; i < cfg.WarmupActions; i++ {
		head.Seed(env.RandomPrices(g.rng))
	}
	g.drv = mechanism.NewDriver("greedy", env, g)
	return g, nil
}

// Name implements mechanism.Mechanism.
func (g *Greedy) Name() string { return "Greedy" }

// Env implements mechanism.Mechanism.
func (g *Greedy) Env() *edgeenv.Env { return g.env }

// BufferSize reports the replay-buffer length (grows with exploration).
func (g *Greedy) BufferSize() int { return g.head.Len() }

// Episode returns the number of training episodes completed.
func (g *Greedy) Episode() int { return g.drv.Episode() }

// SetRoundHook installs a pre-round callback on the episode driver (see
// mechanism.Driver.SetRoundHook).
func (g *Greedy) SetRoundHook(hook func(episode, round int) error) { g.drv.SetRoundHook(hook) }

// Decide implements mechanism.Actor.
func (g *Greedy) Decide(train bool) ([]float64, error) {
	g.lastIdx = g.head.Select(g.rng, train, func() []float64 {
		return g.env.RandomPrices(g.rng)
	})
	return g.head.Prices(g.lastIdx), nil
}

// Observe implements mechanism.Actor: with train set the committed round's
// reward folds into the selected action's score.
func (g *Greedy) Observe(res edgeenv.StepResult, train bool) error {
	if train {
		g.head.Score(g.lastIdx, res.ExteriorReward)
	}
	return nil
}

// Discard implements mechanism.Actor: the discarded round scores nothing.
func (g *Greedy) Discard(bool) {}

// EndEpisode implements mechanism.Actor: the replay head has no
// end-of-episode learner work.
func (g *Greedy) EndEpisode(bool) error { return nil }

// RunEpisode implements mechanism.Mechanism. With train=true the buffer
// scores update and ε-exploration adds new actions; with train=false the
// best known action is replayed every round.
func (g *Greedy) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	return g.drv.RunEpisode(train)
}

// Train runs training episodes, mirroring core.Chiron.Train.
func (g *Greedy) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	return g.drv.Train(episodes, callback)
}

// greedyCheckpointMechanism tags Greedy checkpoints in the unified format.
const greedyCheckpointMechanism = "greedy"

// greedyExtra is the mechanism-specific payload of a Greedy checkpoint.
type greedyExtra struct {
	Replay []policy.ScoredAction `json:"replay"`
}

// Checkpoint captures the baseline's training state in the unified format:
// the scored replay buffer rides in the Extra payload.
func (g *Greedy) Checkpoint() (*rl.Checkpoint, error) {
	extra, err := json.Marshal(greedyExtra{Replay: g.head.Snapshot()})
	if err != nil {
		return nil, fmt.Errorf("baselines: marshal greedy replay: %w", err)
	}
	rng := g.src.State()
	return &rl.Checkpoint{
		Mechanism: greedyCheckpointMechanism,
		Nodes:     g.env.NumNodes(),
		Episode:   g.drv.Episode(),
		RNG:       &rng,
		Extra:     extra,
	}, nil
}

// Restore overwrites the baseline's training state from a checkpoint taken
// on an identically shaped system.
func (g *Greedy) Restore(ck *rl.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("baselines: restore from nil checkpoint")
	}
	if ck.Mechanism != "" && ck.Mechanism != greedyCheckpointMechanism {
		return fmt.Errorf("%w: checkpoint for mechanism %q, want %q", rl.ErrShapeMismatch, ck.Mechanism, greedyCheckpointMechanism)
	}
	if ck.Nodes != g.env.NumNodes() {
		return fmt.Errorf("%w: checkpoint for %d nodes, environment has %d", rl.ErrShapeMismatch, ck.Nodes, g.env.NumNodes())
	}
	if len(ck.Extra) == 0 {
		return fmt.Errorf("%w: missing greedy replay buffer", rl.ErrCorruptCheckpoint)
	}
	var extra greedyExtra
	if err := json.Unmarshal(ck.Extra, &extra); err != nil {
		return fmt.Errorf("%w: parse greedy replay: %v", rl.ErrCorruptCheckpoint, err)
	}
	for i, a := range extra.Replay {
		if len(a.Prices) != g.env.NumNodes() {
			return fmt.Errorf("%w: replay action %d has %d prices, want %d",
				rl.ErrCorruptCheckpoint, i, len(a.Prices), g.env.NumNodes())
		}
	}
	if err := g.head.Restore(extra.Replay); err != nil {
		return fmt.Errorf("%w: %v", rl.ErrCorruptCheckpoint, err)
	}
	g.drv.SetEpisode(ck.Episode)
	if ck.RNG != nil {
		if err := g.src.Restore(*ck.RNG); err != nil {
			return fmt.Errorf("baselines: restore rng: %w", err)
		}
	}
	return nil
}

// SaveCheckpoint writes the baseline's training state as JSON to path.
func (g *Greedy) SaveCheckpoint(path string) error {
	ck, err := g.Checkpoint()
	if err != nil {
		return err
	}
	return rl.SaveCheckpoint(path, ck)
}

// LoadCheckpoint restores the baseline's training state from a
// SaveCheckpoint file.
func (g *Greedy) LoadCheckpoint(path string) error {
	ck, err := rl.LoadCheckpoint(path)
	if err != nil {
		return err
	}
	return g.Restore(ck)
}
