package baselines

import (
	"fmt"
	"math/rand"

	"chiron/internal/edgeenv"
	"chiron/internal/mat"
	"chiron/internal/mechanism"
)

// GreedyConfig parameterizes the Greedy baseline.
type GreedyConfig struct {
	// WarmupActions seeds the replay buffer with random price vectors.
	WarmupActions int
	// Epsilon is the exploration probability: with probability Epsilon a
	// new random action is tried instead of the best known one.
	Epsilon float64
	// Seed drives the baseline's stochasticity.
	Seed int64
}

// DefaultGreedyConfig mirrors the paper's description: a random warmup
// buffer, then exploit-with-high-probability.
func DefaultGreedyConfig() GreedyConfig {
	return GreedyConfig{WarmupActions: 32, Epsilon: 0.1, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c GreedyConfig) Validate() error {
	if c.WarmupActions <= 0 {
		return fmt.Errorf("baselines: greedy warmup %d, want > 0", c.WarmupActions)
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("baselines: greedy epsilon %v outside [0,1]", c.Epsilon)
	}
	return nil
}

// scoredAction is one replay-buffer entry.
type scoredAction struct {
	prices []float64
	reward float64
	tried  bool
}

// Greedy is the paper's second baseline: it fills a replay buffer with
// random price vectors, scores them by observed per-round reward, and
// replays the best-scoring action with probability 1−ε while exploring new
// random actions with probability ε. It has no learning-time structure and
// no budget pacing.
type Greedy struct {
	cfg     GreedyConfig
	env     *edgeenv.Env
	rng     *rand.Rand
	buffer  []scoredAction
	episode int
}

var _ mechanism.Mechanism = (*Greedy)(nil)

// NewGreedy builds the baseline bound to env and pre-fills the replay
// buffer with random actions.
func NewGreedy(env *edgeenv.Env, cfg GreedyConfig) (*Greedy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Greedy{cfg: cfg, env: env, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < cfg.WarmupActions; i++ {
		g.buffer = append(g.buffer, scoredAction{prices: env.RandomPrices(g.rng)})
	}
	return g, nil
}

// Name implements mechanism.Mechanism.
func (g *Greedy) Name() string { return "Greedy" }

// Env implements mechanism.Mechanism.
func (g *Greedy) Env() *edgeenv.Env { return g.env }

// BufferSize reports the replay-buffer length (grows with exploration).
func (g *Greedy) BufferSize() int { return len(g.buffer) }

// bestIndex returns the index of the highest-reward tried action, or a
// random untried one when nothing has been scored yet.
func (g *Greedy) bestIndex() int {
	best := -1
	for i := range g.buffer {
		if !g.buffer[i].tried {
			continue
		}
		if best == -1 || g.buffer[i].reward > g.buffer[best].reward {
			best = i
		}
	}
	if best == -1 {
		return g.rng.Intn(len(g.buffer))
	}
	return best
}

// RunEpisode implements mechanism.Mechanism. With train=true the buffer
// scores update and ε-exploration adds new actions; with train=false the
// best known action is replayed every round.
func (g *Greedy) RunEpisode(train bool) (mechanism.EpisodeResult, error) {
	if _, err := g.env.Reset(); err != nil {
		return mechanism.EpisodeResult{}, err
	}
	ext := mechanism.NewReturns()
	var innReturn float64
	for !g.env.Done() {
		idx := g.bestIndex()
		if train && g.rng.Float64() < g.cfg.Epsilon {
			g.buffer = append(g.buffer, scoredAction{prices: g.env.RandomPrices(g.rng)})
			idx = len(g.buffer) - 1
		}
		prices := mat.CloneVec(g.buffer[idx].prices)
		res, err := g.env.Step(prices)
		if err != nil {
			return mechanism.EpisodeResult{}, err
		}
		if res.Done && res.Round.Participants == 0 {
			break
		}
		ext.Add(res.ExteriorReward)
		innReturn += res.InnerReward
		if train {
			entry := &g.buffer[idx]
			if !entry.tried {
				entry.tried = true
				entry.reward = res.ExteriorReward
			} else {
				// Exponential moving average keeps scores current as the
				// accuracy curve's marginal returns shrink.
				entry.reward = 0.9*entry.reward + 0.1*res.ExteriorReward
			}
		}
		if res.Done {
			break
		}
	}
	g.episode++
	return mechanism.Summarize(g.env, g.episode, ext, innReturn), nil
}

// Train runs training episodes, mirroring core.Chiron.Train.
func (g *Greedy) Train(episodes int, callback func(mechanism.EpisodeResult)) ([]mechanism.EpisodeResult, error) {
	if episodes <= 0 {
		return nil, fmt.Errorf("baselines: train %d episodes, want > 0", episodes)
	}
	results := make([]mechanism.EpisodeResult, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		res, err := g.RunEpisode(true)
		if err != nil {
			return results, fmt.Errorf("baselines: greedy episode %d: %w", ep+1, err)
		}
		results = append(results, res)
		if callback != nil {
			callback(res)
		}
	}
	return results, nil
}
