package market

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleRound(prices, freqs, times []float64, payment, acc float64) Round {
	parts := 0
	for _, t := range times {
		if t > 0 {
			parts++
		}
	}
	return Round{
		Prices: prices, Freqs: freqs, Times: times,
		Payment: payment, Accuracy: acc, Participants: parts,
	}
}

func TestRoundTime(t *testing.T) {
	r := sampleRound(nil, nil, []float64{10, 25, 15}, 1, 0.5)
	if r.RoundTime() != 25 {
		t.Fatalf("RoundTime = %v, want 25", r.RoundTime())
	}
	empty := Round{}
	if empty.RoundTime() != 0 {
		t.Fatalf("empty RoundTime = %v", empty.RoundTime())
	}
}

func TestIdleTimeCountsAllNodes(t *testing.T) {
	// Eqn. 15 sums over all N nodes; a declined node (T=0) is idle for the
	// whole round.
	r := sampleRound(nil, nil, []float64{20, 10, 0}, 1, 0.5)
	want := (20.0 - 20) + (20 - 10) + (20 - 0)
	if r.IdleTime() != want {
		t.Fatalf("IdleTime = %v, want %v", r.IdleTime(), want)
	}
}

func TestTimeEfficiencyEqn16(t *testing.T) {
	r := sampleRound(nil, nil, []float64{20, 10, 0}, 1, 0.5)
	want := 30.0 / (3 * 20)
	if math.Abs(r.TimeEfficiency()-want) > 1e-12 {
		t.Fatalf("TimeEfficiency = %v, want %v", r.TimeEfficiency(), want)
	}
	// Perfect consistency gives exactly 1.
	perfect := sampleRound(nil, nil, []float64{7, 7, 7}, 1, 0.5)
	if perfect.TimeEfficiency() != 1 {
		t.Fatalf("perfect TimeEfficiency = %v", perfect.TimeEfficiency())
	}
	empty := Round{}
	if empty.TimeEfficiency() != 0 {
		t.Fatalf("empty TimeEfficiency = %v", empty.TimeEfficiency())
	}
}

func TestLedgerLifecycle(t *testing.T) {
	l, err := NewLedger(100)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	if l.Budget() != 100 || l.Remaining() != 100 || l.NumRounds() != 0 {
		t.Fatal("fresh ledger state wrong")
	}
	r := sampleRound(nil, nil, []float64{10, 10}, 30, 0.6)
	if err := l.Commit(r); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if l.Remaining() != 70 || l.TotalSpent() != 30 || l.NumRounds() != 1 {
		t.Fatalf("post-commit: remaining %v spent %v rounds %d", l.Remaining(), l.TotalSpent(), l.NumRounds())
	}
	if l.Rounds()[0].Index != 1 {
		t.Fatalf("round index %d, want 1", l.Rounds()[0].Index)
	}
	if l.FinalAccuracy() != 0.6 {
		t.Fatalf("FinalAccuracy = %v", l.FinalAccuracy())
	}
}

func TestLedgerRejectsOverrun(t *testing.T) {
	l, err := NewLedger(50)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	if err := l.Commit(sampleRound(nil, nil, []float64{1}, 60, 0.5)); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overrun error = %v, want ErrBudgetExhausted", err)
	}
	// The rejected round must not change state (Sec. V-A: discarded).
	if l.Remaining() != 50 || l.NumRounds() != 0 {
		t.Fatal("rejected round mutated the ledger")
	}
}

func TestLedgerRejectsNegativePayment(t *testing.T) {
	l, _ := NewLedger(50)
	if err := l.Commit(sampleRound(nil, nil, []float64{1}, -1, 0.5)); err == nil {
		t.Fatal("accepted negative payment")
	}
}

func TestLedgerValidation(t *testing.T) {
	if _, err := NewLedger(0); err == nil {
		t.Fatal("accepted zero budget")
	}
	if _, err := NewLedger(-5); err == nil {
		t.Fatal("accepted negative budget")
	}
}

func TestLedgerReset(t *testing.T) {
	l, _ := NewLedger(100)
	if err := l.Commit(sampleRound(nil, nil, []float64{5}, 40, 0.7)); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	l.Reset()
	if l.Remaining() != 100 || l.NumRounds() != 0 || l.FinalAccuracy() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestLedgerAggregates(t *testing.T) {
	l, _ := NewLedger(100)
	rounds := []Round{
		sampleRound(nil, nil, []float64{10, 20}, 10, 0.5),
		sampleRound(nil, nil, []float64{15, 15}, 20, 0.8),
	}
	for _, r := range rounds {
		if err := l.Commit(r); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	if l.TotalTime() != 35 { // max(10,20) + max(15,15)
		t.Fatalf("TotalTime = %v, want 35", l.TotalTime())
	}
	wantEff := ((30.0 / 40) + 1.0) / 2
	if math.Abs(l.MeanTimeEfficiency()-wantEff) > 1e-12 {
		t.Fatalf("MeanTimeEfficiency = %v, want %v", l.MeanTimeEfficiency(), wantEff)
	}
	// Eqn. 9 with explicit weight: u = λA − w·ΣT.
	want := 2000*0.8 - 0.5*35
	if math.Abs(l.ServerUtility(2000, 0.5)-want) > 1e-12 {
		t.Fatalf("ServerUtility = %v, want %v", l.ServerUtility(2000, 0.5), want)
	}
}

func TestEmptyLedgerAggregates(t *testing.T) {
	l, _ := NewLedger(100)
	if l.MeanTimeEfficiency() != 0 || l.TotalTime() != 0 || l.FinalAccuracy() != 0 {
		t.Fatal("empty ledger aggregates nonzero")
	}
}

// Property (conservation): after any sequence of commits,
// remaining + Σ payments == budget, and remaining >= 0.
func TestLedgerConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := 1 + rng.Float64()*100
		l, err := NewLedger(budget)
		if err != nil {
			return false
		}
		var paid float64
		for i := 0; i < 50; i++ {
			payment := rng.Float64() * budget / 10
			r := sampleRound(nil, nil, []float64{rng.Float64() * 10}, payment, rng.Float64())
			err := l.Commit(r)
			if errors.Is(err, ErrBudgetExhausted) {
				break
			}
			if err != nil {
				return false
			}
			paid += payment
		}
		return math.Abs(l.Remaining()+paid-budget) < 1e-9 && l.Remaining() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: time efficiency is always in [0,1].
func TestTimeEfficiencyBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		times := make([]float64, n)
		for i := range times {
			if rng.Float64() < 0.3 {
				times[i] = 0 // declined
			} else {
				times[i] = rng.Float64() * 50
			}
		}
		r := sampleRound(nil, nil, times, 1, 0.5)
		eff := r.TimeEfficiency()
		return eff >= 0 && eff <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
