package market

import (
	"math"
	"testing"
)

// vectorRound builds a vector-record round and its compact twin carrying
// the same aggregates, so every metric can be cross-checked.
func vectorRound() (Round, Round) {
	times := []float64{4, 0, 6, 2}
	var sum, maxT float64
	for _, v := range times {
		sum += v
		if v > maxT {
			maxT = v
		}
	}
	vec := Round{
		Prices:       []float64{1, 1, 1, 1},
		Freqs:        []float64{1e9, 0, 2e9, 5e8},
		Times:        times,
		Outcomes:     []Outcome{OutcomeCompleted, OutcomeAbsent, OutcomeCompleted, OutcomeCrashed},
		Participants: 3,
		Completed:    2,
	}
	compact := Round{
		NumNodes:     len(times),
		MaxTime:      maxT,
		SumTime:      sum,
		Participants: 3,
		Completed:    2,
	}
	return vec, compact
}

func TestCompactDetection(t *testing.T) {
	vec, compact := vectorRound()
	if vec.Compact() {
		t.Fatal("vector record reported compact")
	}
	if !compact.Compact() {
		t.Fatal("compact record not detected")
	}
	if (&Round{}).Compact() {
		t.Fatal("zero record reported compact")
	}
}

// TestCompactAggregatesMatchVector pins that every metric answers
// identically from streamed aggregates and from the per-node vectors.
func TestCompactAggregatesMatchVector(t *testing.T) {
	vec, compact := vectorRound()
	if got, want := compact.RoundTime(), vec.RoundTime(); got != want {
		t.Fatalf("RoundTime %v != %v", got, want)
	}
	if got, want := compact.IdleTime(), vec.IdleTime(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("IdleTime %v != %v", got, want)
	}
	if got, want := compact.TimeEfficiency(), vec.TimeEfficiency(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("TimeEfficiency %v != %v", got, want)
	}
	if got, want := compact.Failures(), vec.Failures(); got != want {
		t.Fatalf("Failures %d != %d", got, want)
	}
}

func TestCompactEmptyRound(t *testing.T) {
	r := Round{NumNodes: 100}
	if r.RoundTime() != 0 || r.IdleTime() != 0 || r.TimeEfficiency() != 0 || r.Failures() != 0 {
		t.Fatalf("empty compact round: T=%v idle=%v eff=%v fail=%d",
			r.RoundTime(), r.IdleTime(), r.TimeEfficiency(), r.Failures())
	}
}

// TestLedgerAcceptsCompactRounds pins that the ledger aggregates are
// layout-independent.
func TestLedgerAcceptsCompactRounds(t *testing.T) {
	l, err := NewLedger(100)
	if err != nil {
		t.Fatal(err)
	}
	_, compact := vectorRound()
	compact.Payment = 30
	compact.Accuracy = 0.8
	if err := l.Commit(compact); err != nil {
		t.Fatalf("commit compact: %v", err)
	}
	if got := l.TotalTime(); got != compact.MaxTime {
		t.Fatalf("TotalTime %v, want %v", got, compact.MaxTime)
	}
	if got := l.MeanTimeEfficiency(); got != compact.TimeEfficiency() {
		t.Fatalf("MeanTimeEfficiency %v", got)
	}
	if got := l.FinalAccuracy(); got != 0.8 {
		t.Fatalf("FinalAccuracy %v", got)
	}
}
