package market

import (
	"math"
	"testing"
)

// FuzzLedgerCommit drives a ledger with fuzzed budget, payment, and waste
// floats — every NaN, Inf, negative, and overdraft combination the bit
// space can express. The ledger must reject invalid inputs atomically and
// its budget identity (spent + remaining = η, spending never exceeds η)
// must survive every accepted operation.
func FuzzLedgerCommit(f *testing.F) {
	f.Add(100.0, 30.0, 80.0, 5.0)
	f.Add(100.0, math.NaN(), 1.0, -2.0)
	f.Add(0.0, 1.0, 1.0, 1.0)
	f.Add(math.Inf(1), 1.0, math.Inf(-1), math.NaN())
	f.Add(50.0, -3.0, 50.0, 0.0)

	f.Fuzz(func(t *testing.T, budget, pay1, pay2, waste float64) {
		l, err := NewLedger(budget)
		if err != nil {
			if budget > 0 && !math.IsNaN(budget) && !math.IsInf(budget, 0) {
				t.Fatalf("valid budget %v rejected: %v", budget, err)
			}
			return
		}
		if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
			t.Fatalf("invalid budget %v accepted", budget)
		}
		check := func(op string) {
			t.Helper()
			spent, rem := l.TotalSpent(), l.Remaining()
			if math.IsNaN(spent) || math.IsNaN(rem) {
				t.Fatalf("%s: NaN leaked into the ledger (spent %v, remaining %v)", op, spent, rem)
			}
			if rem < 0 || rem > budget {
				t.Fatalf("%s: remaining %v outside [0, η=%v]", op, rem, budget)
			}
			if math.Abs(spent+rem-budget) > 1e-9*budget {
				t.Fatalf("%s: spent %v + remaining %v ≠ η %v", op, spent, rem, budget)
			}
			if l.WastedTime() < 0 || math.IsNaN(l.WastedTime()) {
				t.Fatalf("%s: wasted time %v", op, l.WastedTime())
			}
		}
		for _, pay := range []float64{pay1, pay2} {
			remBefore, roundsBefore := l.Remaining(), l.NumRounds()
			err := l.Commit(Round{Payment: pay, Times: []float64{1}, Participants: 1})
			valid := pay >= 0 && !math.IsNaN(pay) && !math.IsInf(pay, 0) && pay <= remBefore
			if valid != (err == nil) {
				t.Fatalf("Commit(%v) with remaining %v: err = %v", pay, remBefore, err)
			}
			if err != nil && (l.Remaining() != remBefore || l.NumRounds() != roundsBefore) {
				t.Fatalf("rejected Commit(%v) mutated the ledger", pay)
			}
			check("commit")
		}
		err = l.AddWaste(waste)
		if valid := waste >= 0 && !math.IsNaN(waste) && !math.IsInf(waste, 0); valid != (err == nil) {
			t.Fatalf("AddWaste(%v): err = %v", waste, err)
		}
		check("waste")
	})
}
