package market

import (
	"math"
	"strings"
	"testing"
)

func TestCommitRejectsNonFinitePayment(t *testing.T) {
	for _, payment := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		l, err := NewLedger(100)
		if err != nil {
			t.Fatalf("NewLedger: %v", err)
		}
		if err := l.Commit(Round{Payment: payment, Times: []float64{1}}); err == nil {
			t.Errorf("Commit accepted payment %v", payment)
		}
		// The rejected round must leave the ledger untouched.
		if l.Remaining() != 100 || l.NumRounds() != 0 {
			t.Errorf("payment %v mutated ledger: remaining %v, rounds %d",
				payment, l.Remaining(), l.NumRounds())
		}
	}
}

func TestCommitRejectsNegativePaymentExplicitly(t *testing.T) {
	l, err := NewLedger(100)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	err = l.Commit(Round{Payment: -3, Times: []float64{1}})
	if err == nil || !strings.Contains(err.Error(), "negative payment") {
		t.Fatalf("Commit(-3) err = %v, want explicit negative-payment error", err)
	}
}

func TestAddWasteRejectsInvalidSeconds(t *testing.T) {
	l, err := NewLedger(100)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	for _, s := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := l.AddWaste(s); err == nil {
			t.Errorf("AddWaste accepted %v", s)
		}
	}
	if l.WastedTime() != 0 {
		t.Fatalf("rejected waste leaked into the total: %v", l.WastedTime())
	}
	if err := l.AddWaste(2.5); err != nil {
		t.Fatalf("AddWaste(2.5): %v", err)
	}
	if l.WastedTime() != 2.5 {
		t.Fatalf("WastedTime %v, want 2.5", l.WastedTime())
	}
}

func TestNewLedgerRejectsNonFiniteBudget(t *testing.T) {
	for _, b := range []float64{0, -5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewLedger(b); err == nil {
			t.Errorf("NewLedger accepted budget %v", b)
		}
	}
}

func TestTimeEfficiencyEdgeCases(t *testing.T) {
	empty := Round{}
	if got := empty.TimeEfficiency(); got != 0 {
		t.Errorf("empty round efficiency %v, want 0", got)
	}
	zeros := Round{Times: []float64{0, 0, 0}}
	if got := zeros.TimeEfficiency(); got != 0 {
		t.Errorf("all-zero round efficiency %v, want 0", got)
	}
	// One participant among N idle nodes: Eqn. (16) gives 1/N.
	single := Round{Times: []float64{0, 0, 0, 12}, Participants: 1}
	if got, want := single.TimeEfficiency(), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("single-participant efficiency %v, want %v", got, want)
	}
	// Perfect time consistency: everyone finishes together.
	perfect := Round{Times: []float64{7, 7, 7}, Participants: 3}
	if got := perfect.TimeEfficiency(); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect round efficiency %v, want 1", got)
	}
}

func TestLedgerMetricsZeroRounds(t *testing.T) {
	l, err := NewLedger(50)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	if got := l.MeanTimeEfficiency(); got != 0 {
		t.Errorf("MeanTimeEfficiency with no rounds %v, want 0", got)
	}
	if got := l.FinalAccuracy(); got != 0 {
		t.Errorf("FinalAccuracy with no rounds %v, want 0", got)
	}
	if got := l.ServerUtility(2000, 0.3); got != 0 {
		t.Errorf("ServerUtility with no rounds %v, want 0", got)
	}
	// Waste still counts toward the utility's time term even with zero
	// training rounds (a run of nothing but failed offers).
	if err := l.AddWaste(10); err != nil {
		t.Fatalf("AddWaste: %v", err)
	}
	if got, want := l.ServerUtility(2000, 0.3), -3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ServerUtility with waste only %v, want %v", got, want)
	}
}

func TestLedgerAllFailedRound(t *testing.T) {
	l, err := NewLedger(50)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	// Every joiner failed: quorum missed, accuracy frozen at the previous
	// value, only failure payments spent, but the time was still burned.
	r := Round{
		Prices:       []float64{1, 1, 1},
		Freqs:        []float64{2, 3, 4},
		Times:        []float64{5, 6, 8},
		Outcomes:     []Outcome{OutcomeCrashed, OutcomeDropped, OutcomeCorrupted},
		Payment:      0.9, // 10% failure fraction of Σ p·ζ = 9
		Accuracy:     0.1,
		Participants: 3,
		Completed:    0,
	}
	if err := l.Commit(r); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := l.Rounds()[0].Failures(); got != 3 {
		t.Errorf("failures %d, want 3", got)
	}
	if got, want := l.TotalSpent(), 0.9; math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalSpent %v, want %v", got, want)
	}
	if got, want := l.TotalTime(), 8.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalTime %v, want %v", got, want)
	}
	// Time efficiency is still well defined: (5+6+8)/(3·8).
	if got, want := l.MeanTimeEfficiency(), 19.0/24.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanTimeEfficiency %v, want %v", got, want)
	}
	if got, want := l.ServerUtility(2000, 1), 2000*0.1-8.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("ServerUtility %v, want %v", got, want)
	}
}
