// Package market tracks the economics of an edge-learning episode: the
// parameter server's budget η, the per-round price/frequency/time records
// that form the exterior agent's state history, and the time-efficiency
// metric of Eqn. (16).
package market

import (
	"fmt"
	"math"

	"chiron/internal/mat"
)

// Outcome classifies how one node's round ended. The zero value is
// OutcomeAbsent so that clean pre-failure-model records stay valid.
type Outcome uint8

// The per-node round outcomes.
const (
	// OutcomeAbsent means the node never joined: it declined the posted
	// price or was offline.
	OutcomeAbsent Outcome = iota
	// OutcomeCompleted means the node trained, uploaded, and its update
	// entered aggregation.
	OutcomeCompleted
	// OutcomeCrashed means the node died mid-round and went silent.
	OutcomeCrashed
	// OutcomeDeadlineCut means the node was still running when the round
	// deadline expired and the server cut it off.
	OutcomeDeadlineCut
	// OutcomeDropped means the node's upload was lost more times than the
	// server's retry budget allowed.
	OutcomeDropped
	// OutcomeCorrupted means the upload arrived but failed sanitization
	// (non-finite or norm-exploded parameters) and was rejected.
	OutcomeCorrupted
	// OutcomeDeparted means the node left the fleet mid-round (churn): it
	// accepted the offer, then went silent like a crash.
	OutcomeDeparted
)

// String implements fmt.Stringer with stable, trace-friendly names.
func (o Outcome) String() string {
	switch o {
	case OutcomeAbsent:
		return "absent"
	case OutcomeCompleted:
		return "completed"
	case OutcomeCrashed:
		return "crashed"
	case OutcomeDeadlineCut:
		return "deadline-cut"
	case OutcomeDropped:
		return "dropped"
	case OutcomeCorrupted:
		return "corrupted"
	case OutcomeDeparted:
		return "departed"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Failed reports whether the outcome is a failure of a node that had
// joined the round (absent nodes never started, completed nodes finished).
func (o Outcome) Failed() bool {
	switch o {
	case OutcomeCrashed, OutcomeDeadlineCut, OutcomeDropped, OutcomeCorrupted, OutcomeDeparted:
		return true
	default:
		return false
	}
}

// Round is the complete record of one training round, the tuple
// {ζ_k, p_k, T_k} the paper stores in the exterior state.
type Round struct {
	// Index is k, the 1-based round number.
	Index int
	// Prices is p_k: the per-node unit price posted this round.
	Prices []float64
	// Freqs is ζ_k: each node's chosen CPU frequency (0 = declined).
	Freqs []float64
	// Times is T_k's per-node vector: each node's round time (0 = declined).
	Times []float64
	// Outcomes is the per-node end-of-round status. A nil slice (legacy
	// records) means every participant completed.
	Outcomes []Outcome
	// Payment is the budget actually consumed: full price·freq for
	// completed nodes plus the configured failure fraction for failed ones.
	Payment float64
	// Accuracy is A(ω_k) after this round's aggregation (unchanged from
	// the previous round when the completion quorum was missed).
	Accuracy float64
	// Participants counts nodes that joined the round.
	Participants int
	// Completed counts joined nodes whose updates entered aggregation.
	// Zero-valued legacy records imply Completed == Participants.
	Completed int

	// Compact (fleet-scale) records drop the per-node vectors above and
	// carry only the streamed reductions the episode metrics need, so the
	// ledger history stays O(1) per round no matter how large the fleet
	// is. NumNodes > 0 with nil vectors marks a compact record; the
	// aggregate accessors below then answer from these fields instead of
	// rescanning Times.

	// NumNodes is N for compact records (0 on vector records, whose N is
	// len(Times)).
	NumNodes int
	// MaxTime is the streamed T_k = max_i T_{i,k} of a compact record.
	MaxTime float64
	// SumTime is the streamed Σ_i T_{i,k} of a compact record.
	SumTime float64
}

// Compact reports whether the record carries streamed aggregates instead
// of per-node vectors.
func (r *Round) Compact() bool { return r.NumNodes > 0 && len(r.Times) == 0 }

// Failures counts joined nodes that did not complete the round. Compact
// records answer from the participant/completion counters; vector records
// scan Outcomes (legacy nil-Outcome records report 0, implying every
// participant completed).
func (r *Round) Failures() int {
	if r.Outcomes == nil && r.Compact() {
		return r.Participants - r.Completed
	}
	var n int
	for _, o := range r.Outcomes {
		if o.Failed() {
			n++
		}
	}
	return n
}

// RoundTime returns T_k = max_i T_{i,k}, the wall-clock length of the
// round (0 when nobody participated).
func (r *Round) RoundTime() float64 {
	if r.Compact() {
		return r.MaxTime
	}
	maxT, _ := mat.MaxVec(r.Times)
	if maxT < 0 || len(r.Times) == 0 {
		return 0
	}
	return maxT
}

// IdleTime returns Σ_{i=1}^{N} (T_k − T_{i,k}), the quantity the inner
// reward (Eqn. 15) minimizes. The sum runs over all N nodes as the paper
// writes it: a node that declined the round has T_{i,k}=0 and is idle for
// the whole round, so starving nodes is penalized rather than rewarded.
// Compact records answer with the streamed form N·T_k − ΣT_{i,k}.
func (r *Round) IdleTime() float64 {
	if r.Compact() {
		return float64(r.NumNodes)*r.MaxTime - r.SumTime
	}
	roundTime := r.RoundTime()
	var idle float64
	for _, t := range r.Times {
		idle += roundTime - t
	}
	return idle
}

// TimeEfficiency returns Eqn. (16): Σ_{i=1}^{N} T_{i,k} / (N·T_k) — 1.0
// means perfect time consistency. As in Eqn. (15), the sum covers all N
// nodes, so declined rounds (T_{i,k}=0) drag efficiency down. It returns 0
// for an empty round.
func (r *Round) TimeEfficiency() float64 {
	if r.Compact() {
		if r.MaxTime <= 0 {
			return 0
		}
		return r.SumTime / (float64(r.NumNodes) * r.MaxTime)
	}
	roundTime := r.RoundTime()
	if roundTime <= 0 || len(r.Times) == 0 {
		return 0
	}
	var sum float64
	for _, t := range r.Times {
		sum += t
	}
	return sum / (float64(len(r.Times)) * roundTime)
}

// Ledger enforces the budget constraint of OP_PS and accumulates round
// records for an episode.
type Ledger struct {
	budget    float64
	remaining float64
	rounds    []Round
	waste     float64
}

// NewLedger opens a ledger with total budget η.
func NewLedger(budget float64) (*Ledger, error) {
	if budget <= 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("market: budget %v, want finite > 0", budget)
	}
	return &Ledger{budget: budget, remaining: budget}, nil
}

// Budget returns the episode's total budget η.
func (l *Ledger) Budget() float64 { return l.budget }

// Remaining returns the unspent budget.
func (l *Ledger) Remaining() float64 { return l.remaining }

// Rounds returns the recorded rounds (shared slice; callers must not
// mutate).
func (l *Ledger) Rounds() []Round { return l.rounds }

// NumRounds reports how many rounds have been recorded.
func (l *Ledger) NumRounds() int { return len(l.rounds) }

// ErrBudgetExhausted is returned by Commit when a round's payment exceeds
// the remaining budget. Per Sec. V-A the round is discarded (not recorded)
// and the episode must stop.
var ErrBudgetExhausted = fmt.Errorf("market: budget exhausted")

// Commit records a round and deducts its payment. If the payment would
// drive the budget negative the round is rejected with ErrBudgetExhausted
// and the ledger state is unchanged, matching the paper's stopping rule.
func (l *Ledger) Commit(r Round) error {
	// A NaN payment would silently poison every later comparison (NaN
	// fails both the < 0 and the > remaining check), so non-finite values
	// are rejected before the sign test.
	if math.IsNaN(r.Payment) || math.IsInf(r.Payment, 0) {
		return fmt.Errorf("market: non-finite payment %v", r.Payment)
	}
	if r.Payment < 0 {
		return fmt.Errorf("market: negative payment %v", r.Payment)
	}
	if r.Payment > l.remaining {
		return fmt.Errorf("%w: payment %.4f exceeds remaining %.4f", ErrBudgetExhausted, r.Payment, l.remaining)
	}
	l.remaining -= r.Payment
	r.Index = len(l.rounds) + 1
	l.rounds = append(l.rounds, r)
	return nil
}

// AddWaste records wall-clock time the server lost without a training
// round happening — e.g. an offer that attracted no participants timing
// out. Waste counts toward TotalTime (and therefore the server utility)
// but not toward the round history or time-efficiency statistics.
func (l *Ledger) AddWaste(seconds float64) error {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return fmt.Errorf("market: non-finite waste %v", seconds)
	}
	if seconds < 0 {
		return fmt.Errorf("market: negative waste %v", seconds)
	}
	l.waste += seconds
	return nil
}

// WastedTime reports the accumulated non-training wall-clock time.
func (l *Ledger) WastedTime() float64 { return l.waste }

// Reset restores the full budget and clears the round history.
func (l *Ledger) Reset() {
	l.remaining = l.budget
	l.rounds = l.rounds[:0]
	l.waste = 0
}

// TotalSpent returns the budget consumed so far.
func (l *Ledger) TotalSpent() float64 { return l.budget - l.remaining }

// TotalTime returns Σ_k T_k across recorded rounds plus any wasted time,
// the system metric in the server utility (Eqn. 9).
func (l *Ledger) TotalTime() float64 {
	sum := l.waste
	for i := range l.rounds {
		sum += l.rounds[i].RoundTime()
	}
	return sum
}

// MeanTimeEfficiency averages Eqn. (16) across recorded rounds (0 when no
// rounds were recorded).
func (l *Ledger) MeanTimeEfficiency() float64 {
	if len(l.rounds) == 0 {
		return 0
	}
	var sum float64
	for i := range l.rounds {
		sum += l.rounds[i].TimeEfficiency()
	}
	return sum / float64(len(l.rounds))
}

// FinalAccuracy returns A(ω_K) of the last recorded round, or 0 when the
// episode recorded nothing.
func (l *Ledger) FinalAccuracy() float64 {
	if len(l.rounds) == 0 {
		return 0
	}
	return l.rounds[len(l.rounds)-1].Accuracy
}

// ServerUtility returns Eqn. (9) with an explicit time weight:
// u = λ·A(ω_K) − w·Σ_k T_k. The paper's Eqn. (9) has w=1 with time in the
// task's natural unit; w is exposed because the reproduction keeps time in
// seconds (see DESIGN.md).
func (l *Ledger) ServerUtility(lambda, timeWeight float64) float64 {
	return lambda*l.FinalAccuracy() - timeWeight*l.TotalTime()
}
