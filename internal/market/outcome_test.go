package market

import (
	"strings"
	"testing"
)

func TestOutcomeStringsStable(t *testing.T) {
	// Trace files serialize these names; changing one breaks old traces.
	want := map[Outcome]string{
		OutcomeAbsent:      "absent",
		OutcomeCompleted:   "completed",
		OutcomeCrashed:     "crashed",
		OutcomeDeadlineCut: "deadline-cut",
		OutcomeDropped:     "dropped",
		OutcomeCorrupted:   "corrupted",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, o.String(), s)
		}
	}
	if !strings.Contains(Outcome(200).String(), "200") {
		t.Errorf("unknown outcome string %q does not carry the value", Outcome(200).String())
	}
}

func TestOutcomeFailed(t *testing.T) {
	for _, o := range []Outcome{OutcomeCrashed, OutcomeDeadlineCut, OutcomeDropped, OutcomeCorrupted} {
		if !o.Failed() {
			t.Errorf("%v not counted as failed", o)
		}
	}
	for _, o := range []Outcome{OutcomeAbsent, OutcomeCompleted} {
		if o.Failed() {
			t.Errorf("%v counted as failed", o)
		}
	}
}

func TestRoundFailures(t *testing.T) {
	legacy := Round{Participants: 2} // nil Outcomes: pre-failure-model record
	if legacy.Failures() != 0 {
		t.Fatalf("legacy round failures %d, want 0", legacy.Failures())
	}
	r := Round{
		Participants: 3,
		Completed:    1,
		Outcomes:     []Outcome{OutcomeCompleted, OutcomeCrashed, OutcomeAbsent, OutcomeDropped},
	}
	if r.Failures() != 2 {
		t.Fatalf("failures %d, want 2", r.Failures())
	}
}
